"""Θ-orbit canonicalization of exploration states."""

import pytest

from repro.core import InstructionSet, System, encode_value
from repro.core.orbits import OrbitCanonicalizer, StabilizerChainCanonicalizer
from repro.runtime import Executor, RandomProgramQ, RoundRobinScheduler
from repro.topologies import dining_system, ring, star


def ring4():
    return System(ring(4), None, InstructionSet.Q)


def state_after(system, proc):
    ex = Executor(
        system,
        RandomProgramQ(system.names, seed=0),
        RoundRobinScheduler(system.processors),
    )
    return ex.successor(proc).exploration_state()


class TestGroupEnumeration:
    def test_unmarked_ring_rotations(self):
        canon = OrbitCanonicalizer(ring4())
        assert canon.group_size == 4
        assert not canon.truncated

    def test_marked_ring_is_rigid(self):
        system = System(ring(4), {"p0": 1}, InstructionSet.Q)
        assert OrbitCanonicalizer(system).group_size == 1

    def test_dining_tables(self):
        assert OrbitCanonicalizer(dining_system(5)).group_size == 5
        assert (
            OrbitCanonicalizer(dining_system(6, alternating=True)).group_size
            == 6
        )

    def test_truncation_is_flagged(self):
        canon = OrbitCanonicalizer(ring4(), limit=2)
        assert canon.group_size == 2
        assert canon.truncated

    def test_limit_equal_to_group_order_is_complete(self):
        # Regression: a cap of exactly |Aut| used to be reported as
        # truncated because the enumeration stopped *at* the cap without
        # checking whether a further element existed.
        canon = OrbitCanonicalizer(ring4(), limit=4)
        assert canon.group_size == 4
        assert not canon.truncated


class TestCanonicalForm:
    def test_symmetric_steps_share_a_canonical_form(self):
        # p0 and p1 are automorphic on the unmarked ring, so stepping
        # either one must land in the same orbit.
        system = ring4()
        canon = OrbitCanonicalizer(system)
        a = state_after(system, "p0")
        b = state_after(system, "p1")
        assert a != b
        assert canon.canonical(*a) == canon.canonical(*b)

    def test_canonical_is_orbit_invariant_choice(self):
        # Canonicalizing twice (or canonicalizing a canonical form)
        # changes nothing: the least orbit member is a fixed point.
        system = ring4()
        canon = OrbitCanonicalizer(system)
        a = state_after(system, "p0")
        proc, var, vec = canon.canonical(*a)
        assert canon.canonical(proc, var, vec) == (proc, var, vec)

    def test_identity_truncation_degrades_to_exact_dedup(self):
        # Soundness under truncation: with only the identity enumerated,
        # equal canonical forms are exactly equal raw states — distinct
        # orbit members stop merging but never merge wrongly.
        system = ring4()
        canon = OrbitCanonicalizer(system, limit=1)
        a = state_after(system, "p0")
        b = state_after(system, "p1")
        assert canon.canonical(*a) != canon.canonical(*b)
        assert canon.canonical(*a) == (a[0], a[1], ())

    def test_vectors_permute_with_the_processor_axis(self):
        # A processor-indexed vector (e.g. fairness ages) riding along
        # must be permuted consistently: symmetric states with the
        # symmetric vector still merge, asymmetric vectors keep them
        # apart.
        system = ring4()
        canon = OrbitCanonicalizer(system)
        a = state_after(system, "p0")
        b = state_after(system, "p1")
        ages_a = (1, 2, 2, 2)  # p0 just ran
        ages_b = (2, 1, 2, 2)  # p1 just ran — the rotated image
        assert canon.canonical(a[0], a[1], (ages_a,)) == canon.canonical(
            b[0], b[1], (ages_b,)
        )
        assert canon.canonical(a[0], a[1], (ages_a,)) != canon.canonical(
            b[0], b[1], (ages_a,)
        )

    def test_least_orbit_member_is_numeric_not_textual(self):
        # Regression: repr-string comparison ordered "10" before "2", so
        # the canonical representative of a rotation orbit depended on
        # how values happened to print.  Encoded comparison is numeric.
        system = ring4()
        canon = OrbitCanonicalizer(system)
        var = tuple(("plain", 0, False, -1) for _ in system.variables)
        rotated = canon.canonical((10, 2, 10, 10), var)
        assert rotated[0][0] == 2  # the least slot leads, numerically


class TestStabilizerChainCanonicalizer:
    def test_exact_group_order_without_enumeration(self):
        assert StabilizerChainCanonicalizer(ring4()).group_size == 4
        assert StabilizerChainCanonicalizer(dining_system(5)).group_size == 5
        # The star's leaves permute freely: 5! elements, which the old
        # enumerating canonicalizer could only reach via its cap.
        big = System(star(5), None, InstructionSet.Q)
        chain = StabilizerChainCanonicalizer(big)
        assert chain.group_size == 120
        assert not chain.truncated

    def test_key_equality_is_orbit_equivalence(self):
        system = ring4()
        keys = StabilizerChainCanonicalizer(system)
        a = state_after(system, "p0")
        b = state_after(system, "p1")
        assert keys.canonical_key(*a) == keys.canonical_key(*b)
        assert keys.identity_key(*a) != keys.identity_key(*b)

    def test_key_matches_enumerated_minimum(self):
        # The chain's minimal-image search must select exactly the least
        # encoded orbit member the enumerating canonicalizer picks.
        system = ring4()
        keys = StabilizerChainCanonicalizer(system)
        full = OrbitCanonicalizer(system, limit=None)
        a = state_after(system, "p0")
        least = full.canonical(*a)
        assert keys.canonical_key(*a) == keys.identity_key(
            least[0], least[1], least[2]
        )

    def test_factorial_star_group_stays_cheap(self):
        # Uniform states on a star: every leaf permutation renders the
        # same image, so the frontier dedup collapses the search to a
        # handful of candidates instead of 6! cosets.
        system = System(star(6), None, InstructionSet.Q)
        keys = StabilizerChainCanonicalizer(system)
        assert keys.group_size == 720
        proc = tuple("s" for _ in system.processors)
        var = tuple(("plain", 0, False, -1) for _ in system.variables)
        key = keys.canonical_key(proc, var)
        assert key == keys.canonical_key(proc, var)

    def test_vectors_permute_with_the_processor_axis(self):
        system = ring4()
        keys = StabilizerChainCanonicalizer(system)
        a = state_after(system, "p0")
        b = state_after(system, "p1")
        ages_a = (1, 2, 2, 2)
        ages_b = (2, 1, 2, 2)
        assert keys.canonical_key(a[0], a[1], (ages_a,)) == keys.canonical_key(
            b[0], b[1], (ages_b,)
        )
        assert keys.canonical_key(a[0], a[1], (ages_a,)) != keys.canonical_key(
            b[0], b[1], (ages_a,)
        )
