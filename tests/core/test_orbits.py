"""Θ-orbit canonicalization of exploration states."""

import pytest

from repro.core import InstructionSet, System
from repro.core.orbits import OrbitCanonicalizer
from repro.runtime import Executor, RandomProgramQ, RoundRobinScheduler
from repro.topologies import dining_system, ring


def ring4():
    return System(ring(4), None, InstructionSet.Q)


def state_after(system, proc):
    ex = Executor(
        system,
        RandomProgramQ(system.names, seed=0),
        RoundRobinScheduler(system.processors),
    )
    return ex.successor(proc).exploration_state()


class TestGroupEnumeration:
    def test_unmarked_ring_rotations(self):
        canon = OrbitCanonicalizer(ring4())
        assert canon.group_size == 4
        assert not canon.truncated

    def test_marked_ring_is_rigid(self):
        system = System(ring(4), {"p0": 1}, InstructionSet.Q)
        assert OrbitCanonicalizer(system).group_size == 1

    def test_dining_tables(self):
        assert OrbitCanonicalizer(dining_system(5)).group_size == 5
        assert (
            OrbitCanonicalizer(dining_system(6, alternating=True)).group_size
            == 6
        )

    def test_truncation_is_flagged(self):
        canon = OrbitCanonicalizer(ring4(), limit=2)
        assert canon.group_size == 2
        assert canon.truncated


class TestCanonicalForm:
    def test_symmetric_steps_share_a_canonical_form(self):
        # p0 and p1 are automorphic on the unmarked ring, so stepping
        # either one must land in the same orbit.
        system = ring4()
        canon = OrbitCanonicalizer(system)
        a = state_after(system, "p0")
        b = state_after(system, "p1")
        assert a != b
        assert canon.canonical(*a) == canon.canonical(*b)

    def test_canonical_is_orbit_invariant_choice(self):
        # Canonicalizing twice (or canonicalizing a canonical form)
        # changes nothing: the least orbit member is a fixed point.
        system = ring4()
        canon = OrbitCanonicalizer(system)
        a = state_after(system, "p0")
        proc, var, vec = canon.canonical(*a)
        assert canon.canonical(proc, var, vec) == (proc, var, vec)

    def test_identity_truncation_degrades_to_exact_dedup(self):
        # Soundness under truncation: with only the identity enumerated,
        # equal canonical forms are exactly equal raw states — distinct
        # orbit members stop merging but never merge wrongly.
        system = ring4()
        canon = OrbitCanonicalizer(system, limit=1)
        a = state_after(system, "p0")
        b = state_after(system, "p1")
        assert canon.canonical(*a) != canon.canonical(*b)
        assert canon.canonical(*a) == (a[0], a[1], ())

    def test_vectors_permute_with_the_processor_axis(self):
        # A processor-indexed vector (e.g. fairness ages) riding along
        # must be permuted consistently: symmetric states with the
        # symmetric vector still merge, asymmetric vectors keep them
        # apart.
        system = ring4()
        canon = OrbitCanonicalizer(system)
        a = state_after(system, "p0")
        b = state_after(system, "p1")
        ages_a = (1, 2, 2, 2)  # p0 just ran
        ages_b = (2, 1, 2, 2)  # p1 just ran — the rotated image
        assert canon.canonical(a[0], a[1], (ages_a,)) == canon.canonical(
            b[0], b[1], (ages_b,)
        )
        assert canon.canonical(a[0], a[1], (ages_a,)) != canon.canonical(
            b[0], b[1], (ages_a,)
        )
