"""Unit tests for Section 7: Theorems 10-11 and symmetry breaking."""

import pytest

from repro.core import (
    InstructionSet,
    System,
    analyze_prime_symmetry,
    can_break_symmetry,
    is_prime,
    is_symmetric_system,
    processor_symmetry_classes,
    symmetric_implies_similar,
)
from repro.topologies import dining_system, figure2_system, ring, star, torus_grid


class TestPrime:
    @pytest.mark.parametrize("n,expected", [(1, False), (2, True), (3, True), (4, False), (5, True), (6, False), (7, True), (9, False)])
    def test_is_prime(self, n, expected):
        assert is_prime(n) is expected


class TestSymmetricSystems:
    def test_dp5_symmetric(self):
        assert is_symmetric_system(dining_system(5))

    def test_dp6_alternating_symmetric(self):
        assert is_symmetric_system(dining_system(6, alternating=True))

    def test_figure2_not_symmetric(self):
        assert not is_symmetric_system(figure2_system())


class TestTheorem10:
    @pytest.mark.parametrize(
        "system",
        [
            dining_system(5).with_instruction_set(InstructionSet.Q),
            dining_system(6, alternating=True).with_instruction_set(InstructionSet.Q),
            figure2_system(),
            System(star(4), None, InstructionSet.Q),
            System(torus_grid(2, 2), None, InstructionSet.Q),
        ],
    )
    def test_symmetric_implies_similar_in_q(self, system):
        assert symmetric_implies_similar(system)


class TestTheorem11:
    def test_dp5_prime_class_applies(self):
        reports = analyze_prime_symmetry(dining_system(5))
        proc_reports = [r for r in reports if len(r.orbit) == 5]
        assert proc_reports
        r = proc_reports[0]
        assert r.prime and r.applies
        assert r.generator_order == 5
        assert r.processors_similar_in_q

    def test_dp6_composite_class_does_not_apply(self):
        reports = analyze_prime_symmetry(dining_system(6, alternating=True))
        phil = [r for r in reports if len(r.orbit) == 6]
        assert phil
        assert not phil[0].prime
        assert not phil[0].applies

    def test_dp7_prime_applies(self):
        reports = analyze_prime_symmetry(dining_system(7))
        phil = [r for r in reports if len(r.orbit) == 7]
        assert phil[0].applies


class TestSymmetryBreaking:
    def test_q_never_breaks(self):
        assert not can_break_symmetry(dining_system(5).with_instruction_set(InstructionSet.Q))

    def test_s_never_breaks(self):
        assert not can_break_symmetry(dining_system(5).with_instruction_set(InstructionSet.S))

    def test_l_breaks_on_shared_names(self):
        # Star: all leaves name the hub identically -> lock races break symmetry.
        assert can_break_symmetry(System(star(3), None, InstructionSet.L))

    def test_l_cannot_break_without_shared_names(self):
        # Uniform dining ring: every fork has differently-named users.
        assert not can_break_symmetry(dining_system(5, instruction_set=InstructionSet.L))

    def test_l_breaks_on_alternating_ring(self):
        assert can_break_symmetry(dining_system(6, alternating=True, instruction_set=InstructionSet.L))


class TestSymmetryGap:
    """The converse of Theorem 10 fails: similar does not imply symmetric."""

    def test_two_rings_of_different_sizes(self):
        from repro.core import union_of_systems
        from repro.core.symmetry import symmetry_gap
        from repro.topologies import ring

        union = union_of_systems(
            [
                System(ring(3), None, InstructionSet.Q),
                System(ring(6), None, InstructionSet.Q),
            ]
        )
        report = symmetry_gap(union)
        # Similarity merges all 9 processors (no program can count its
        # ring); automorphisms cannot mix the components.
        assert report.converse_of_theorem10_fails
        assert report.gap > 0
        pairs = report.merged_but_not_symmetric
        assert any(
            {a[0], b[0]} == {0, 1} for a, b in pairs
        )  # a cross-component pair

    def test_no_gap_on_vertex_transitive_systems(self):
        from repro.core.symmetry import symmetry_gap

        report = symmetry_gap(dining_system(5).with_instruction_set(InstructionSet.Q))
        assert not report.converse_of_theorem10_fails
        assert report.gap == 0

    def test_theorem10_direction_never_violated(self):
        """orbit_count >= similarity_count always (Theorem 10)."""
        from repro.core.symmetry import symmetry_gap

        for system in (
            figure2_system(),
            System(star(4), None, InstructionSet.Q),
            System(torus_grid(2, 2), None, InstructionSet.Q),
        ):
            assert symmetry_gap(system).gap >= 0
