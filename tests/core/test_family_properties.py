"""Property tests on families and the relabel construction."""

from hypothesis import assume, given, settings

from repro.core import (
    Family,
    InstructionSet,
    relabel_family,
)

from ..strategies import systems

SETTINGS = settings(max_examples=15, deadline=None)


@SETTINGS
@given(systems(instruction_set=InstructionSet.L, max_processors=3, max_variables=3))
def test_relabel_counts_are_per_variable_permutations(system):
    """Every member assigns each variable's edges distinct counts 0..d-1."""
    assume(system.network.edge_count <= 6)  # keep the product family small
    family = relabel_family(system)
    net = system.network
    for member in family.members:
        for v in net.variables:
            counts = sorted(
                member.state0(p).count_for(name)
                for p, name in net.neighbors_of_variable(v)
            )
            assert counts == list(range(net.degree(v)))


@SETTINGS
@given(systems(instruction_set=InstructionSet.L, max_processors=3, max_variables=3))
def test_relabel_family_is_homogeneous(system):
    assume(system.network.edge_count <= 6)
    family = relabel_family(system)
    assert family.is_homogeneous
    assert all(m.instruction_set is InstructionSet.Q for m in family.members)


@SETTINGS
@given(systems(instruction_set=InstructionSet.Q, max_processors=3, max_variables=3))
def test_versions_share_label_space(system):
    """A two-member family's versions use comparable labels: every label
    of one version appears in the union labeling's range."""
    other = system.with_uniform_state(1)
    family = Family([system, other])
    union_labels = set(family.similarity_labeling().labels)
    for version in family.member_labelings():
        assert set(version.labels) <= union_labels


@SETTINGS
@given(systems(instruction_set=InstructionSet.Q, max_processors=3, max_variables=3))
def test_elite_when_present_hits_once(system):
    other = system.with_uniform_state(1)
    family = Family([system, other])
    elite = family.elite()
    if elite is None:
        return
    for member, version in zip(family.members, family.member_labelings()):
        hits = [p for p in member.processors if version[p] in elite]
        assert len(hits) == 1
