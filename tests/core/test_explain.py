"""Tests for the dissimilarity explainer."""

import pytest

from repro.core import (
    EnvironmentModel,
    InstructionSet,
    System,
    explain_dissimilarity,
    similarity_labeling,
)
from repro.topologies import figure2_system, path, ring


class TestSimilarPairs:
    def test_similar_nodes_reported_similar(self, fig2_q):
        e = explain_dissimilarity(fig2_q, "p1", "p2")
        assert e.similar
        assert e.split_round is None
        assert e.chain == ()


class TestExplanations:
    def test_figure2_explains_the_peek_multiplicity(self, fig2_q):
        e = explain_dissimilarity(fig2_q, "p1", "p3")
        assert not e.similar
        assert e.split_round is not None
        text = " ".join(e.chain)
        assert "'n'-neighbors" in text
        assert "2" in text and "1" in text  # the 2-vs-1 writer multiplicity

    def test_initial_state_base_case(self):
        system = System(ring(3), {"p0": 1}, InstructionSet.Q)
        e = explain_dissimilarity(system, "p0", "p1")
        assert "initial states" in e.chain[-1]

    def test_kind_mismatch(self, fig2_q):
        e = explain_dissimilarity(fig2_q, "p1", "v1")
        assert "different kinds" in e.reason

    def test_chain_recursion_bottoms_out(self):
        system = System(path(5), None, InstructionSet.Q)
        e = explain_dissimilarity(system, "p0", "p4")
        assert not e.similar
        assert len(e.chain) >= 2
        # The last entry must be a base case (counts or states or cap).
        assert any(
            key in e.chain[-1]
            for key in ("writer", "initial states", "truncated", "classes")
        )

    def test_depth_cap(self):
        system = System(path(6), None, InstructionSet.Q)
        e = explain_dissimilarity(system, "p0", "p5", max_depth=1)
        assert not e.similar  # still decided, chain just shorter


class TestConsistencyWithTheta:
    @pytest.mark.parametrize("pair", [("p1", "p2"), ("p1", "p3"), ("v1", "v2")])
    def test_matches_similarity_labeling(self, fig2_q, pair):
        theta = similarity_labeling(fig2_q)
        e = explain_dissimilarity(fig2_q, *pair)
        assert e.similar == (theta[pair[0]] == theta[pair[1]])

    def test_set_model_explanations(self, fig2_q):
        # Under the SET model p1 and p3 are similar: the explainer agrees.
        e = explain_dissimilarity(fig2_q, "p1", "p3", model=EnvironmentModel.SET)
        assert e.similar
