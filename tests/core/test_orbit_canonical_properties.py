"""Property tests: the stabilizer-chain canonical key is exactly the
orbit-equivalence the enumerating canonicalizer induces.

The chain canonicalizer never lists the group, so its correctness is an
algebraic claim: ``canonical_key(x) == canonical_key(y)`` iff ``x`` and
``y`` are in the same orbit.  Here the enumerating
:class:`OrbitCanonicalizer` (uncapped, on small systems) is the oracle,
and states are random processor/variable fillings including embedded
processor references (lock owners), which the permutation action must
rename, not just shuffle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InstructionSet, System, encode_value
from repro.core.automorphism import iter_automorphisms
from repro.core.orbits import OrbitCanonicalizer, StabilizerChainCanonicalizer
from repro.topologies import dining_system, ring, star

SETTINGS = settings(max_examples=60, deadline=None)

SYSTEMS = {
    "ring4": System(ring(4), None, InstructionSet.Q),
    "star4": System(star(4), None, InstructionSet.Q),
    "dining5": dining_system(5),
}


def _random_state(draw, system):
    n = len(system.processors)
    proc = tuple(
        draw(st.integers(min_value=0, max_value=2)) for _ in range(n)
    )
    var = tuple(
        (
            "plain",
            draw(st.integers(min_value=0, max_value=1)),
            draw(st.booleans()),
            draw(st.integers(min_value=-1, max_value=n - 1)),
        )
        for _ in system.variables
    )
    return proc, var


@st.composite
def state_pairs(draw):
    name = draw(st.sampled_from(sorted(SYSTEMS)))
    system = SYSTEMS[name]
    return name, _random_state(draw, system), _random_state(draw, system)


def _apply(system, sigma, state):
    """The image of ``state`` under automorphism ``sigma`` (same action
    convention as the canonicalizers: slot of p reads old slot of
    sigma(p), embedded owners rename through sigma^-1)."""
    procs = tuple(system.processors)
    variables = tuple(system.variables)
    pindex = {p: i for i, p in enumerate(procs)}
    vindex = {v: i for i, v in enumerate(variables)}
    inverse = {sigma[p]: p for p in procs}
    proc, var = state
    new_proc = tuple(proc[pindex[sigma[p]]] for p in procs)
    new_var = []
    for v in variables:
        kind, value, locked, owner = var[vindex[sigma[v]]]
        renamed = pindex[inverse[procs[owner]]] if owner >= 0 else -1
        new_var.append((kind, value, locked, renamed))
    return new_proc, tuple(new_var)


class TestChainMatchesEnumeration:
    @SETTINGS
    @given(state_pairs())
    def test_key_equality_iff_same_orbit(self, case):
        name, a, b = case
        system = SYSTEMS[name]
        keys = StabilizerChainCanonicalizer(system)
        oracle = OrbitCanonicalizer(system, limit=None)
        chain_same = keys.canonical_key(*a) == keys.canonical_key(*b)
        oracle_same = encode_value(oracle.canonical(*a)) == encode_value(
            oracle.canonical(*b)
        )
        assert chain_same == oracle_same

    @SETTINGS
    @given(state_pairs())
    def test_key_is_invariant_under_every_automorphism(self, case):
        name, a, _b = case
        system = SYSTEMS[name]
        keys = StabilizerChainCanonicalizer(system)
        key = keys.canonical_key(*a)
        for sigma in iter_automorphisms(system, limit=30):
            image = _apply(system, sigma, a)
            assert keys.canonical_key(*image) == key

    @SETTINGS
    @given(state_pairs())
    def test_key_is_the_least_identity_key_of_the_orbit(self, case):
        # The key is not just an invariant: it is the minimum of
        # identity_key over the orbit, so it is reproducible from the
        # enumerated orbit members directly.
        name, a, _b = case
        system = SYSTEMS[name]
        keys = StabilizerChainCanonicalizer(system)
        members = [
            keys.identity_key(*_apply(system, sigma, a))
            for sigma in iter_automorphisms(system, limit=200)
        ]
        assert keys.canonical_key(*a) == min(members)
