"""Unit tests for System and union_of_systems."""

import pytest

from repro.core import InstructionSet, Network, ScheduleClass, System, union_of_systems
from repro.exceptions import SystemError_
from repro.topologies import figure1_network, ring


def net2():
    return figure1_network()


class TestSystem:
    def test_default_states_are_zero(self):
        s = System(net2())
        assert all(s.state0(n) == 0 for n in s.nodes)

    def test_explicit_states(self):
        s = System(net2(), {"p": 7})
        assert s.state0("p") == 7
        assert s.state0("q") == 0

    def test_unknown_node_in_state_rejected(self):
        with pytest.raises(SystemError_, match="unknown nodes"):
            System(net2(), {"ghost": 1})

    def test_state0_unknown_node(self):
        with pytest.raises(SystemError_):
            System(net2()).state0("ghost")

    def test_with_state(self):
        s = System(net2()).with_state({"p": 3})
        assert s.state0("p") == 3

    def test_with_uniform_state(self):
        s = System(net2(), {"p": 5}).with_uniform_state(9)
        assert {s.state0(n) for n in s.nodes} == {9}

    def test_with_instruction_set(self):
        s = System(net2()).with_instruction_set(InstructionSet.L)
        assert s.instruction_set is InstructionSet.L

    def test_induced_subsystem(self):
        s = System(net2(), {"p": 1})
        sub = s.induced_subsystem(["p"])
        assert sub.processors == ("p",)
        assert sub.state0("p") == 1

    def test_equality_and_hash(self):
        assert System(net2()) == System(net2())
        assert hash(System(net2())) == hash(System(net2()))
        assert System(net2()) != System(net2(), {"p": 1})


class TestInstructionSet:
    def test_has_locks(self):
        assert InstructionSet.L.has_locks
        assert InstructionSet.L2.has_locks
        assert not InstructionSet.S.has_locks
        assert not InstructionSet.Q.has_locks

    def test_is_multiset(self):
        assert InstructionSet.Q.is_multiset
        assert not InstructionSet.S.is_multiset


class TestScheduleClass:
    def test_is_fair(self):
        assert ScheduleClass.FAIR.is_fair
        assert ScheduleClass.BOUNDED_FAIR.is_fair
        assert not ScheduleClass.GENERAL.is_fair


class TestUnion:
    def test_union_tags_nodes(self):
        a = System(net2(), {"p": 1})
        b = System(net2(), {"q": 2})
        u = union_of_systems([a, b])
        assert u.state0((0, "p")) == 1
        assert u.state0((1, "q")) == 2
        assert len(u.processors) == 4
        assert not u.network.is_connected

    def test_union_requires_matching_instruction_sets(self):
        a = System(net2(), None, InstructionSet.Q)
        b = System(net2(), None, InstructionSet.L)
        with pytest.raises(SystemError_):
            union_of_systems([a, b])

    def test_union_of_zero_rejected(self):
        with pytest.raises(SystemError_):
            union_of_systems([])

    def test_pairwise_disjoint_union_requires_same_names(self):
        from repro.exceptions import NetworkError

        a = System(net2())
        b = System(ring(3))
        with pytest.raises(NetworkError):
            a.disjoint_union(b)  # different NAMES
