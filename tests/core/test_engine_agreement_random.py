"""Randomized cross-engine agreement on random bipartite systems.

Algorithm 1 has one specification and three implementations; this file
checks, over a spread of seeded-random networks, marks, environment
models and name alphabets, that

* literal, signatures and worklist produce the same partition, and
* the incidence-cached fast path matches the uncached reference path
  bit-for-bit (identical canonical labels, not just the same partition).
"""

import random

import pytest

from repro.core import (
    EnvironmentModel,
    InstructionSet,
    System,
    algorithm1_literal,
    algorithm1_signatures,
    algorithm1_worklist,
    compute_similarity_labeling,
)
from repro.topologies import random_network


def _random_system(seed: int) -> System:
    """A small seeded-random marked system; literal-engine friendly.

    Connectivity is deliberately not required -- disconnected networks
    must refine correctly too (a 1-name network is almost never
    connected).
    """
    rng = random.Random(seed)
    n_procs = rng.randint(3, 9)
    n_vars = rng.randint(2, n_procs + 2)
    names = ("a", "b", "c")[: rng.randint(1, 3)]
    net = random_network(n_procs, n_vars, names=names, seed=seed)
    procs = list(net.processors)
    marked = rng.sample(procs, rng.randint(0, min(2, len(procs))))
    state = {p: 1 for p in marked}
    return System(net, state, InstructionSet.Q)


CASES = [
    (seed, model)
    for seed in range(25)
    for model in (EnvironmentModel.MULTISET, EnvironmentModel.SET)
]


@pytest.mark.parametrize("seed, model", CASES)
def test_engines_agree_and_cache_is_exact(seed, model):
    system = _random_system(seed)

    lit = algorithm1_literal(system, model=model).labeling
    sig = algorithm1_signatures(system, model=model).labeling
    wl = algorithm1_worklist(system, model=model).labeling
    assert lit.same_partition(sig), (seed, model)
    assert sig.same_partition(wl), (seed, model)

    # The cached fast path must be indistinguishable from the reference
    # path: same canonical label on every node.
    for engine in ("literal", "signatures", "worklist"):
        cached = compute_similarity_labeling(
            system, model=model, engine=engine, use_incidence_cache=True
        ).labeling
        reference = compute_similarity_labeling(
            system, model=model, engine=engine, use_incidence_cache=False
        ).labeling
        assert {n: cached[n] for n in system.nodes} == {
            n: reference[n] for n in system.nodes
        }, (seed, model, engine)


@pytest.mark.parametrize("seed", range(6))
def test_structural_agreement_without_state(seed):
    system = _random_system(seed + 1000)
    results = [
        engine(system, include_state=False).labeling
        for engine in (algorithm1_literal, algorithm1_signatures, algorithm1_worklist)
    ]
    assert results[0].same_partition(results[1])
    assert results[1].same_partition(results[2])
