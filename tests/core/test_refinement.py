"""Unit tests for Algorithm 1 (three engines)."""

import pytest

from repro.core import (
    EnvironmentModel,
    InstructionSet,
    System,
    algorithm1_literal,
    algorithm1_signatures,
    algorithm1_worklist,
    compute_similarity_labeling,
)
from repro.topologies import (
    dining_system,
    figure1_system,
    figure2_system,
    path,
    ring,
    star,
    torus_grid,
)

ENGINES = [algorithm1_literal, algorithm1_signatures, algorithm1_worklist]


def classes_of(system, engine, **kw):
    return engine(system, **kw).labeling


class TestKnownSystems:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_figure1_processors_merge(self, engine):
        theta = classes_of(figure1_system(), engine)
        assert theta["p"] == theta["q"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_figure2_p3_split(self, engine):
        theta = classes_of(figure2_system(), engine)
        assert theta["p1"] == theta["p2"]
        assert theta["p1"] != theta["p3"]
        assert theta["v1"] != theta["v2"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_anonymous_ring_all_similar(self, engine):
        theta = classes_of(System(ring(6), None, InstructionSet.Q), engine)
        procs = [f"p{i}" for i in range(6)]
        assert len({theta[p] for p in procs}) == 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_marked_ring_all_unique(self, engine):
        theta = classes_of(System(ring(5), {"p0": 1}, InstructionSet.Q), engine)
        procs = [f"p{i}" for i in range(5)]
        assert len({theta[p] for p in procs}) == 5

    @pytest.mark.parametrize("engine", ENGINES)
    def test_path_all_unique(self, engine):
        theta = classes_of(System(path(5), None, InstructionSet.Q), engine)
        procs = [f"p{i}" for i in range(5)]
        assert len({theta[p] for p in procs}) == 5

    @pytest.mark.parametrize("engine", ENGINES)
    def test_star_leaves_merge(self, engine):
        theta = classes_of(System(star(4), None, InstructionSet.Q), engine)
        assert len({theta[f"p{i}"] for i in range(4)}) == 1


class TestModels:
    def test_set_vs_multiset_on_figure2(self):
        sys_q = figure2_system()
        multiset = compute_similarity_labeling(sys_q, EnvironmentModel.MULTISET).labeling
        set_model = compute_similarity_labeling(sys_q, EnvironmentModel.SET).labeling
        assert multiset["p1"] != multiset["p3"]
        assert set_model["p1"] == set_model["p3"]
        # SET is always a coarsening of MULTISET.
        assert multiset.refines(set_model)

    def test_include_state_false_ignores_marks(self):
        system = System(ring(4), {"p0": 1}, InstructionSet.Q)
        structural = compute_similarity_labeling(system, include_state=False).labeling
        assert len({structural[f"p{i}"] for i in range(4)}) == 1


class TestEnginesAgree:
    @pytest.mark.parametrize(
        "system",
        [
            figure1_system(),
            figure2_system(),
            System(ring(7), {"p0": 1, "p3": 1}, InstructionSet.Q),
            System(torus_grid(2, 3), None, InstructionSet.Q),
            System(path(6), {"p2": 1}, InstructionSet.Q),
            dining_system(6, alternating=True).with_instruction_set(InstructionSet.Q),
        ],
    )
    def test_same_partition(self, system):
        a = algorithm1_literal(system).labeling
        b = algorithm1_signatures(system).labeling
        c = algorithm1_worklist(system).labeling
        assert a.same_partition(b)
        assert b.same_partition(c)


class TestStats:
    def test_stats_populated(self):
        result = algorithm1_signatures(figure2_system())
        assert result.stats.rounds >= 1
        assert result.stats.classes == len(result.labeling.labels)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            compute_similarity_labeling(figure1_system(), engine="bogus")

    def test_worklist_scales(self):
        system = System(ring(200), {"p0": 1}, InstructionSet.Q)
        result = algorithm1_worklist(system)
        assert len(result.labeling.labels) == 400  # all nodes unique
