"""Unit tests for the bipartite network model."""

import pytest

from repro.core import Network
from repro.exceptions import NetworkError


def simple_net():
    return Network(
        ("a", "b"),
        {"p": {"a": "u", "b": "v"}, "q": {"a": "v", "b": "v"}},
    )


class TestConstruction:
    def test_basic_accessors(self):
        net = simple_net()
        assert net.processors == ("p", "q")
        assert net.variables == ("u", "v")
        assert set(net.names) == {"a", "b"}
        assert net.edge_count == 4

    def test_missing_name_rejected(self):
        with pytest.raises(NetworkError, match="must name exactly NAMES"):
            Network(("a", "b"), {"p": {"a": "u"}})

    def test_extra_name_rejected(self):
        with pytest.raises(NetworkError, match="must name exactly NAMES"):
            Network(("a",), {"p": {"a": "u", "b": "v"}})

    def test_empty_names_rejected(self):
        with pytest.raises(NetworkError, match="NAMES must be non-empty"):
            Network((), {"p": {}})

    def test_no_processors_rejected(self):
        with pytest.raises(NetworkError, match="at least one processor"):
            Network(("a",), {})

    def test_id_collision_rejected(self):
        with pytest.raises(NetworkError, match="both processor and variable"):
            Network(("a",), {"x": {"a": "x"}})

    def test_explicit_isolated_variable(self):
        net = Network(("a",), {"p": {"a": "u"}}, variables=["u", "island"])
        assert "island" in net.variables
        assert net.neighbors_of_variable("island") == ()


class TestNeighborhoods:
    def test_n_nbr(self):
        net = simple_net()
        assert net.n_nbr("p", "a") == "u"
        assert net.n_nbr("q", "b") == "v"

    def test_n_nbr_unknown(self):
        with pytest.raises(NetworkError):
            simple_net().n_nbr("zzz", "a")

    def test_neighbors_of_processor(self):
        assert simple_net().neighbors_of_processor("q") == {"a": "v", "b": "v"}

    def test_variable_neighbors_include_name_multiplicity(self):
        net = simple_net()
        # q names v twice (a and b): two edges.
        assert net.neighbors_of_variable("v") == (("p", "b"), ("q", "a"), ("q", "b"))
        assert net.degree("v") == 3

    def test_n_neighbors_of_variable(self):
        net = simple_net()
        assert net.n_neighbors_of_variable("v", "b") == ("p", "q")
        assert net.n_neighbors_of_variable("u", "b") == ()


class TestIncidenceCache:
    def test_cached_and_fresh_agree(self):
        net = simple_net()
        cached = net.incidence
        fresh = net.build_incidence()
        assert cached is not fresh
        assert cached.node_index == fresh.node_index
        assert cached.proc_rows == fresh.proc_rows
        assert cached.var_rows == fresh.var_rows
        assert cached.proc_neighbors == fresh.proc_neighbors
        assert cached.var_name_neighbors == fresh.var_name_neighbors

    def test_incidence_is_memoized(self):
        net = simple_net()
        assert net.incidence is net.incidence

    def test_node_indexing_roundtrip(self):
        net = simple_net()
        inc = net.incidence
        assert inc.n_processors == 2
        assert inc.n_nodes == 4
        for node, idx in inc.node_index.items():
            assert inc.node_of(idx) == node
        # Processors occupy 0..P-1, variables P..P+V-1.
        assert sorted(inc.node_index[p] for p in net.processors) == [0, 1]
        assert sorted(inc.node_index[v] for v in net.variables) == [2, 3]

    def test_rows_match_network_edges(self):
        net = simple_net()
        inc = net.incidence
        for p in net.processors:
            assert inc.proc_neighbors[p] == tuple(
                net.n_nbr(p, name) for name in inc.names
            )
        for v in net.variables:
            for name, procs in zip(inc.names, inc.var_name_neighbors[v]):
                assert procs == net.n_neighbors_of_variable(v, name)

    def test_degrees(self):
        net = simple_net()
        inc = net.incidence
        assert inc.degrees["v"] == 3
        assert inc.degrees["u"] == 1

    def test_n_neighbors_of_variable_errors(self):
        net = simple_net()
        with pytest.raises(NetworkError):
            net.n_neighbors_of_variable("nope", "a")
        with pytest.raises(NetworkError):
            net.n_neighbors_of_variable("v", "zzz")


class TestStructure:
    def test_connected(self):
        assert simple_net().is_connected

    def test_disconnected(self):
        net = Network(
            ("a",), {"p": {"a": "u"}, "q": {"a": "w"}}
        )
        assert not net.is_connected
        assert len(net.connected_components) == 2

    def test_is_distributed(self):
        # Every processor touches v -> not distributed.
        net = Network(("a",), {"p": {"a": "v"}, "q": {"a": "v"}})
        assert not net.is_distributed
        # Ring of 3 is distributed.
        from repro.topologies import ring

        assert ring(3).is_distributed


class TestConstructions:
    def test_disjoint_union(self):
        a, b = simple_net(), simple_net()
        u = a.disjoint_union(b)
        assert len(u.processors) == 4
        assert len(u.variables) == 4
        assert not u.is_connected

    def test_union_requires_same_names(self):
        a = simple_net()
        b = Network(("x",), {"p": {"x": "u"}})
        with pytest.raises(NetworkError, match="identical NAMES"):
            a.disjoint_union(b)

    def test_induced_subnetwork_keeps_all_edges(self):
        net = simple_net()
        sub = net.induced_subnetwork(["q"])
        assert sub.processors == ("q",)
        assert sub.variables == ("v",)
        assert sub.n_nbr("q", "a") == "v"

    def test_induced_subnetwork_unknown_processor(self):
        with pytest.raises(NetworkError):
            simple_net().induced_subnetwork(["nope"])

    def test_all_subnetworks_count(self):
        # 2 processors -> 3 nonempty subsets.
        assert len(list(simple_net().all_subnetworks())) == 3

    def test_relabeled(self):
        net = simple_net().relabeled(lambda x: ("t", x))
        assert ("t", "p") in net.processors
        assert net.n_nbr(("t", "p"), "a") == ("t", "u")


class TestEquality:
    def test_equal_networks(self):
        assert simple_net() == simple_net()
        assert hash(simple_net()) == hash(simple_net())

    def test_different_networks(self):
        other = Network(("a", "b"), {"p": {"a": "u", "b": "u"}, "q": {"a": "v", "b": "v"}})
        assert simple_net() != other
