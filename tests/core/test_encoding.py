"""Canonical byte encoding of state values (injective, ordered, stable)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InstructionSet, System, encode_value
from repro.core.encoding import StateEncoder, ValueInterner
from repro.topologies import ring

SETTINGS = settings(max_examples=200, deadline=None)

#: Closure of the scalar types under tuples/frozensets — the value
#: universe exploration states actually draw from.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=6),
    st.binary(max_size=6),
)
values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.frozensets(inner, max_size=3),
    ),
    max_leaves=8,
)


class TestEncodeValue:
    @SETTINGS
    @given(values, values)
    def test_injective(self, a, b):
        # Distinct values must get distinct encodings, and byte equality
        # must imply Python equality.  The converse is deliberately
        # false: Python calls frozenset([0]) == frozenset([False])
        # equal, while the type-aware encoding keeps them apart.
        enc_same = encode_value(a) == encode_value(b)
        if enc_same:
            assert type(a) is type(b) and a == b
        if a != b:
            assert not enc_same

    @SETTINGS
    @given(
        st.integers(min_value=-(2**70), max_value=2**70),
        st.integers(min_value=-(2**70), max_value=2**70),
    )
    def test_int_order_preserved(self, a, b):
        # The regression that motivated the encoding layer: repr-string
        # comparison put "10" before "2".  Byte comparison of encodings
        # must agree with numeric order, including across the 64-bit
        # boundary.
        assert (encode_value(a) < encode_value(b)) == (a < b)

    @SETTINGS
    @given(st.floats(allow_nan=False), st.floats(allow_nan=False))
    def test_float_order_preserved(self, a, b):
        assert (encode_value(a) < encode_value(b)) == (a < b)

    def test_numeric_lookalikes_stay_distinct(self):
        # Python hashes 1, 1.0 and True to the same dict slot; their
        # encodings must still differ (type tags lead the bytes).
        forms = {encode_value(v) for v in (1, 1.0, True)}
        assert len(forms) == 3

    def test_total_order_across_types(self):
        # Any two encodable values compare without a TypeError, and the
        # order groups values by type tag.
        sample = [None, False, 3, 2.5, "x", b"y", (1, 2), frozenset({1})]
        keys = sorted(encode_value(v) for v in sample)
        assert len(set(keys)) == len(sample)

    def test_container_encoding_is_delimited(self):
        # Length prefixes make nesting unambiguous: regrouping the same
        # leaves must change the encoding.
        assert encode_value((("a", "b"), "c")) != encode_value(("a", ("b", "c")))
        assert encode_value(("ab",)) != encode_value(("a", "b"))

    def test_set_encoding_is_iteration_order_independent(self):
        # frozensets encode via sorted element encodings, so the key is
        # the same whatever insertion (and hash-seed driven iteration)
        # order produced the set.
        a = frozenset(["p0", "p1", "p2"])
        b = frozenset(reversed(sorted(a)))
        assert encode_value(a) == encode_value(b)


class TestValueInterner:
    def test_interning_returns_the_same_object(self):
        interner = ValueInterner()
        first = interner.encode((1, "a"))
        assert interner.encode((1, "a")) is first
        assert len(interner) == 1

    def test_type_rides_in_the_key(self):
        interner = ValueInterner()
        assert interner.encode(1) != interner.encode(1.0)
        assert interner.encode(1) != interner.encode(True)


class TestStateEncoder:
    def _encoder(self):
        return StateEncoder(System(ring(3), None, InstructionSet.Q))

    def test_identity_key_is_state_equality(self):
        enc = self._encoder()
        proc = ("idle", "idle", "busy")
        var = tuple(("plain", 0, False, -1) for _ in range(3))
        assert enc.identity_key(proc, var) == enc.identity_key(proc, var)
        other = ("idle", "busy", "idle")
        assert enc.identity_key(proc, var) != enc.identity_key(other, var)

    def test_vectors_fold_into_processor_slots(self):
        enc = self._encoder()
        proc = ("s", "s", "s")
        var = tuple(("plain", 0, False, -1) for _ in range(3))
        ages_a = ((0, 1, 2),)
        ages_b = ((2, 1, 0),)
        assert enc.identity_key(proc, var, ages_a) != enc.identity_key(
            proc, var, ages_b
        )

    def test_render_var_renames_owner_through_position(self):
        enc = self._encoder()
        entries = enc.var_entries((("plain", 7, True, 0),))
        direct = enc.render_var(entries[0], lambda i: i)
        swapped = enc.render_var(entries[0], lambda i: 2 - i)
        assert direct != swapped
