"""Unit tests for mimicry (fair S, Section 6)."""

from repro.core import (
    InstructionSet,
    ScheduleClass,
    System,
    fair_s_selection_possible,
    mimicry_relation,
    mimics,
    processors_mimicking_no_other,
    similarity_labeling,
    EnvironmentModel,
)
from repro.topologies import figure3_system, witness_bounded_s_vs_fair_s


class TestFigure3:
    def test_theta_separates_everyone(self, fig3_s):
        theta = similarity_labeling(fig3_s, model=EnvironmentModel.SET)
        assert len({theta[p] for p in fig3_s.processors}) == 3

    def test_p_mimics_q(self, fig3_s):
        assert mimics(fig3_s, "p", "q")

    def test_q_does_not_mimic_p(self, fig3_s):
        # q's variable structurally shows z's presence in the full system.
        assert not mimics(fig3_s, "q", "p")

    def test_z_mimics_no_other(self, fig3_s):
        relation = mimicry_relation(fig3_s)
        assert not relation["z"]

    def test_selection_still_possible(self, fig3_s):
        # Figure 3 illustrates *label-learnability* failure (p mimics q);
        # selection is still possible because q and z mimic nobody: q's
        # variable structurally carries z, and z's unique initial state
        # can never be impersonated.
        assert processors_mimicking_no_other(fig3_s) == ("q", "z")
        assert fair_s_selection_possible(fig3_s)


class TestSimilarityImpliesMimicry:
    def test_similar_processors_mimic_each_other(self):
        net, state, _desc = witness_bounded_s_vs_fair_s()
        system = System(net, state, InstructionSet.S, ScheduleClass.FAIR)
        assert mimics(system, "q1", "q2")
        assert mimics(system, "q2", "q1")


class TestHierarchyWitness:
    def test_every_processor_mimics_in_witness(self):
        net, state, _desc = witness_bounded_s_vs_fair_s()
        system = System(net, state, InstructionSet.S, ScheduleClass.FAIR)
        relation = mimicry_relation(system)
        assert all(relation[p] for p in system.processors)
        assert not fair_s_selection_possible(system)

    def test_witness_solvable_in_bounded_fair(self):
        net, state, _desc = witness_bounded_s_vs_fair_s()
        system = System(net, state, InstructionSet.S, ScheduleClass.BOUNDED_FAIR)
        theta = similarity_labeling(system, model=EnvironmentModel.SET)
        assert theta.class_size(theta["p"]) == 1
