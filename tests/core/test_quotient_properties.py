"""Property tests for quotients and canonical forms."""

from hypothesis import given, settings

from repro.core import (
    canonical_form,
    compute_similarity_labeling,
    decide_selection,
    quotient_system,
    similarity_structures_equal,
)

from ..strategies import systems

SETTINGS = settings(max_examples=25, deadline=None)


@SETTINGS
@given(systems())
def test_quotient_class_counts_match_theta(system):
    theta = compute_similarity_labeling(system).labeling
    q = quotient_system(system, theta)
    assert q.processor_class_count + q.variable_class_count == len(theta.labels)


@SETTINGS
@given(systems())
def test_quotient_sizes_sum_to_node_counts(system):
    q = quotient_system(system)
    assert sum(s for _l, s, _st in q.pclasses) == len(system.processors)
    assert sum(s for _l, s, _st in q.vclasses) == len(system.variables)


@SETTINGS
@given(systems())
def test_quotient_selection_matches_full_decision(system):
    """For Q systems the quotient answers the selection question."""
    q = quotient_system(system)
    assert q.selection_possible() == decide_selection(system).possible


@SETTINGS
@given(systems())
def test_canonical_form_invariant_under_renaming(system):
    renamed_net = system.network.relabeled(lambda n: ("renamed", n))
    renamed = type(system)(
        renamed_net,
        {("renamed", n): system.state0(n) for n in system.nodes},
        system.instruction_set,
        system.schedule_class,
    )
    assert canonical_form(system) == canonical_form(renamed)
    assert similarity_structures_equal(system, renamed)


@SETTINGS
@given(systems())
def test_self_similarity_structure(system):
    assert similarity_structures_equal(system, system)
