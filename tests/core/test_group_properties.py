"""The automorphism set really is a group (Section 7's premise).

"The set of automorphisms of a graph is a group, so symmetry of nodes is
an equivalence relation" -- verified concretely: closure, identity,
inverses, and the equivalence-relation structure of orbits.
"""

from hypothesis import given, settings

from repro.core import InstructionSet, System
from repro.core.automorphism import automorphism_orbits, iter_automorphisms
from repro.topologies import dining_system, figure2_network, ring, star

from ..strategies import systems


def compose(f, g):
    return {x: f[g[x]] for x in g}


def invert(f):
    return {v: k for k, v in f.items()}


def group_of(system, limit=200):
    return [dict(a) for a in iter_automorphisms(system, limit=limit)]


class TestGroupAxioms:
    def test_identity_closure_inverse_on_ring(self):
        system = System(ring(4), None, InstructionSet.Q)
        group = group_of(system)
        as_items = {tuple(sorted(g.items())) for g in group}
        identity = {n: n for n in system.nodes}
        assert tuple(sorted(identity.items())) in as_items
        for f in group:
            assert tuple(sorted(invert(f).items())) in as_items
            for g in group:
                assert tuple(sorted(compose(f, g).items())) in as_items

    def test_group_order_divides_consistently(self):
        # Ring automorphisms = rotations: cyclic of order n.
        for n in (3, 5, 6):
            system = System(ring(n), None, InstructionSet.Q)
            assert len(group_of(system)) == n

    def test_star_group_is_symmetric_group(self):
        system = System(star(3), None, InstructionSet.Q)
        assert len(group_of(system)) == 6


class TestOrbitsAreEquivalence:
    def test_orbits_partition_nodes(self):
        system = System(figure2_network(), None, InstructionSet.Q)
        orbits = automorphism_orbits(system)
        flat = [n for o in orbits for n in o]
        assert sorted(map(repr, flat)) == sorted(map(repr, system.nodes))

    def test_dp5_orbits(self):
        system = dining_system(5)
        orbits = automorphism_orbits(system)
        assert sorted(len(o) for o in orbits) == [5, 5]


@settings(max_examples=10, deadline=None)
@given(systems(max_processors=3, max_variables=3))
def test_group_closure_property(system):
    group = group_of(system, limit=50)
    if len(group) > 12:
        return  # keep the quadratic check cheap
    as_items = {tuple(sorted(g.items())) for g in group}
    for f in group:
        for g in group:
            assert tuple(sorted(compose(f, g).items())) in as_items
