"""Unit tests for the Labeling partition algebra."""

import pytest

from repro.core import Labeling
from repro.exceptions import LabelingError


class TestBasics:
    def test_getitem(self):
        lab = Labeling({"a": 1, "b": 1, "c": 2})
        assert lab["a"] == 1
        assert len(lab) == 3
        assert lab.labels == {1, 2}

    def test_unknown_node(self):
        with pytest.raises(LabelingError):
            Labeling({"a": 1})["zz"]

    def test_empty_rejected(self):
        with pytest.raises(LabelingError):
            Labeling({})

    def test_blocks_deterministic(self):
        lab = Labeling({"a": 1, "b": 1, "c": 2})
        assert lab.blocks == (frozenset({"a", "b"}), frozenset({"c"}))

    def test_block_of(self):
        lab = Labeling({"a": 1, "b": 1, "c": 2})
        assert lab.block_of("a") == {"a", "b"}

    def test_class_size(self):
        lab = Labeling({"a": 1, "b": 1, "c": 2})
        assert lab.class_size(1) == 2
        assert lab.class_size(2) == 1

    def test_uniquely_labeled_nodes(self):
        lab = Labeling({"a": 1, "b": 1, "c": 2})
        assert lab.uniquely_labeled_nodes == ("c",)

    def test_every_node_is_paired(self):
        assert Labeling({"a": 1, "b": 1}).every_node_is_paired()
        assert not Labeling({"a": 1, "b": 2}).every_node_is_paired()
        # Restricted to a subset of nodes:
        lab = Labeling({"a": 1, "b": 1, "c": 2})
        assert lab.every_node_is_paired(["a", "b"])
        assert not lab.every_node_is_paired(["a", "c"])


class TestComparisons:
    def test_refines(self):
        fine = Labeling({"a": 1, "b": 2, "c": 3})
        coarse = Labeling({"a": "x", "b": "x", "c": "y"})
        assert fine.refines(coarse)
        assert not coarse.refines(fine)

    def test_refines_requires_same_nodes(self):
        with pytest.raises(LabelingError):
            Labeling({"a": 1}).refines(Labeling({"b": 1}))

    def test_same_partition_ignores_label_names(self):
        a = Labeling({"a": 1, "b": 1, "c": 2})
        b = Labeling({"a": "x", "b": "x", "c": "y"})
        assert a.same_partition(b)

    def test_meet(self):
        a = Labeling({"a": 1, "b": 1, "c": 1})
        b = Labeling({"a": "x", "b": "y", "c": "y"})
        met = a.meet(b)
        assert met.blocks == (frozenset({"a"}), frozenset({"b", "c"}))

    def test_restrict(self):
        lab = Labeling({"a": 1, "b": 2})
        assert set(lab.restrict(["a"])) == {"a"}
        with pytest.raises(LabelingError):
            lab.restrict(["zz"])


class TestConstruction:
    def test_trivial_subsimilarity(self):
        lab = Labeling.trivial_subsimilarity(["a", "b"])
        assert len(lab.labels) == 1

    def test_trivial_supersimilarity(self):
        lab = Labeling.trivial_supersimilarity(["a", "b"])
        assert len(lab.labels) == 2

    def test_from_blocks(self):
        lab = Labeling.from_blocks([["a", "b"], ["c"]])
        assert lab["a"] == lab["b"] != lab["c"]

    def test_from_blocks_overlap_rejected(self):
        with pytest.raises(LabelingError):
            Labeling.from_blocks([["a"], ["a"]])

    def test_canonical_is_deterministic(self):
        lab = Labeling({"p1": 99, "p2": 99, "v": "zz"})
        canon = lab.canonical(lambda n: "P" if n.startswith("p") else "V")
        assert str(canon["p1"]) == "P0"
        assert str(canon["v"]) == "V0"
        assert canon["p1"] == canon["p2"]

    def test_relabel_nodes(self):
        lab = Labeling({"a": 1}).relabel_nodes(lambda n: n.upper())
        assert lab["A"] == 1


class TestJoin:
    def test_join_merges_transitively(self):
        from repro.core.labeling import join

        a = Labeling({"x": 1, "y": 1, "z": 2})
        b = Labeling({"x": 1, "y": 2, "z": 2})
        joined = join(a, b)
        # x~y (via a), y~z (via b) => one block.
        assert len(joined.labels) == 1

    def test_join_of_identical_is_same_partition(self):
        from repro.core.labeling import join

        a = Labeling({"x": 1, "y": 2})
        assert join(a, a).same_partition(a)

    def test_join_is_coarsening_of_both(self):
        from repro.core.labeling import join

        a = Labeling({"x": 1, "y": 2, "z": 2})
        b = Labeling({"x": 1, "y": 1, "z": 3})
        joined = join(a, b)
        assert a.refines(joined)
        assert b.refines(joined)

    def test_join_mismatched_nodes_rejected(self):
        from repro.core.labeling import join

        with pytest.raises(LabelingError):
            join(Labeling({"x": 1}), Labeling({"y": 1}))
