"""Unit tests for families, ELITE, and relabel enumeration (Section 5)."""

import pytest

from repro.core import (
    Family,
    InstructionSet,
    RelabeledState,
    ScheduleClass,
    System,
    elite_by_theorem9_greedy,
    relabel_family,
    relabel_family_extended,
)
from repro.exceptions import FamilyError, SelectionError
from repro.topologies import dining_system, figure1_network, figure1_system, ring


def two_member_family():
    net = figure1_network()
    m1 = System(net, {"p": 0, "q": 1}, InstructionSet.Q)
    m2 = System(net, {"p": 1, "q": 0}, InstructionSet.Q)
    return Family([m1, m2])


class TestFamilyBasics:
    def test_empty_family_rejected(self):
        with pytest.raises(FamilyError):
            Family([])

    def test_mixed_instruction_sets_rejected(self):
        net = figure1_network()
        with pytest.raises(FamilyError):
            Family([System(net, None, InstructionSet.Q), System(net, None, InstructionSet.L)])

    def test_mixed_names_rejected(self):
        with pytest.raises(FamilyError):
            Family([System(figure1_network()), System(ring(3))])

    def test_homogeneous(self):
        assert two_member_family().is_homogeneous
        het = Family([System(ring(3)), System(ring(4))])
        assert not het.is_homogeneous

    def test_union_system_disconnected(self):
        assert not two_member_family().union_system().network.is_connected


class TestVersions:
    def test_member_labelings_share_labels(self):
        fam = two_member_family()
        v1, v2 = fam.member_labelings()
        # Marked/unmarked processors get cross-comparable labels.
        assert v1["q"] == v2["p"]  # both state-1
        assert v1["p"] == v2["q"]  # both state-0

    def test_elite_exists(self):
        fam = two_member_family()
        elite = fam.elite()
        assert elite is not None
        v1, v2 = fam.member_labelings()
        for member, version in zip(fam.members, (v1, v2)):
            hits = [p for p in member.processors if version[p] in elite]
            assert len(hits) == 1

    def test_no_elite_for_fully_symmetric_family(self):
        net = figure1_network()
        fam = Family([System(net, None, InstructionSet.Q)])
        assert fam.elite() is None
        assert not fam.has_selection_algorithm()


class TestGreedyElite:
    def test_greedy_matches_paper_invariant(self):
        fam = two_member_family()
        versions = fam.member_labelings()
        elite = elite_by_theorem9_greedy(versions, ["p", "q"])
        for version in versions:
            hits = [p for p in ("p", "q") if version[p] in elite]
            assert len(hits) == 1

    def test_greedy_raises_when_all_paired(self):
        net = figure1_network()
        member = System(net, None, InstructionSet.Q)
        fam = Family([member])
        versions = fam.member_labelings()
        with pytest.raises(SelectionError):
            elite_by_theorem9_greedy(versions, ["p", "q"])


class TestRelabelFamily:
    def test_requires_locks(self):
        with pytest.raises(FamilyError):
            relabel_family(figure1_system(InstructionSet.Q))

    def test_figure1_relabel_members(self):
        fam = relabel_family(figure1_system(InstructionSet.L))
        # v handed counts 0/1 in two possible orders.
        assert len(fam) == 2
        states = {
            (m.state0("p").count_for("n"), m.state0("q").count_for("n"))
            for m in fam.members
        }
        assert states == {(0, 1), (1, 0)}

    def test_members_are_q_systems(self):
        fam = relabel_family(figure1_system(InstructionSet.L))
        assert all(m.instruction_set is InstructionSet.Q for m in fam.members)

    def test_relabeled_state_accessors(self):
        rs = RelabeledState("orig", (("a", 0), ("b", 1)))
        assert rs.count_for("a") == 0
        assert rs.count_for("b") == 1
        with pytest.raises(KeyError):
            rs.count_for("zz")

    def test_dp5_family_has_all_similar_version(self):
        fam = relabel_family(dining_system(5, instruction_set=InstructionSet.L))
        versions = fam.member_labelings()
        procs = fam.members[0].processors
        assert any(len({v[p] for p in procs}) == 1 for v in versions)

    def test_dp6_adjacent_always_dissimilar(self):
        from repro.topologies import adjacent_pairs

        system = dining_system(6, alternating=True, instruction_set=InstructionSet.L)
        fam = relabel_family(system)
        pairs = adjacent_pairs(system)
        for version in fam.member_labelings():
            for a, b in pairs:
                assert version[a] != version[b]


class TestExtendedRelabel:
    def test_requires_l2(self):
        with pytest.raises(FamilyError):
            relabel_family_extended(figure1_system(InstructionSet.L))

    def test_swapped_names_pair_separated_in_l2(self):
        from repro.core import Network

        net = Network(
            ("a", "b"),
            {"p1": {"a": "v", "b": "w"}, "p2": {"a": "w", "b": "v"}},
        )
        system = System(net, None, InstructionSet.L2)
        fam = relabel_family_extended(system)
        for version in fam.member_labelings():
            assert version["p1"] != version["p2"]

    def test_plain_l_family_pairs_swapped_names(self):
        from repro.core import Network

        net = Network(
            ("a", "b"),
            {"p1": {"a": "v", "b": "w"}, "p2": {"a": "w", "b": "v"}},
        )
        system = System(net, None, InstructionSet.L)
        fam = relabel_family(system)
        paired = [
            v for v in fam.member_labelings() if v["p1"] == v["p2"]
        ]
        assert paired  # some lock order leaves the pair symmetric


class _QClone:
    """Equal to InstructionSet.Q by value, but a distinct object.

    Serialization layers and parametric generators can hand ``Family``
    instruction-set objects that compare equal without being the same
    interned instance; the membership checks must use equality.
    """

    value = "Q"
    has_locks = False
    is_multiset = True

    def __eq__(self, other):
        return getattr(other, "value", None) == self.value

    def __hash__(self):
        return hash(self.value)


class TestFamilyEquality:
    def test_equal_but_distinct_instruction_sets_accepted(self):
        net = figure1_network()
        m1 = System(net, None, _QClone())
        m2 = System(net, None, _QClone())  # a second, distinct instance
        assert m1.instruction_set is not m2.instruction_set
        fam = Family([m1, m2])
        assert len(fam) == 2

    def test_unequal_instruction_sets_still_rejected(self):
        net = figure1_network()
        with pytest.raises(FamilyError, match="instruction set"):
            Family([System(net, None, _QClone()), System(net, None, InstructionSet.L)])

    def test_cross_size_parametric_members(self):
        # Each member is built independently by the generator; the
        # family must still assemble (the original identity comparison
        # only worked because enum members are interned).
        from repro.core import parametric_family

        fam = parametric_family("ring").family(3)
        assert len(fam) == 3
        assert not fam.is_homogeneous


class TestSingleMarkDegenerates:
    def test_duplicate_processors_rejected(self):
        with pytest.raises(FamilyError, match="duplicated"):
            from repro.core import single_mark_family

            single_mark_family(ring(3), processors=["p0", "p1", "p0"])

    def test_unknown_processors_rejected(self):
        from repro.core import single_mark_family

        with pytest.raises(FamilyError, match="not processors"):
            single_mark_family(ring(3), processors=["p9"])

    def test_empty_processor_list_rejected(self):
        from repro.core import single_mark_family

        with pytest.raises(FamilyError, match="at least one processor"):
            single_mark_family(ring(3), processors=[])


class TestRelabelDegenerates:
    def test_relabel_rejects_processor_free_network(self):
        from repro.core import Network

        net = Network(("a",), {}, variables=("v",))
        with pytest.raises(FamilyError, match="at least one processor"):
            relabel_family(System(net, None, InstructionSet.L))

    def test_extended_relabel_rejects_processor_free_network(self):
        from repro.core import Network

        net = Network(("a",), {}, variables=("v",))
        with pytest.raises(FamilyError, match="at least one processor"):
            relabel_family_extended(System(net, None, InstructionSet.L2))

    def test_extended_relabel_accepts_equal_l2_clone(self):
        class _L2Clone:
            value = "L2"
            has_locks = True
            is_multiset = False

            def __eq__(self, other):
                return getattr(other, "value", None) == self.value

            def __hash__(self):
                return hash(self.value)

        from repro.core import Network

        net = Network(("a",), {"p1": {"a": "v"}})
        fam = relabel_family_extended(System(net, None, _L2Clone()))
        assert len(fam) >= 1


class TestTopologyFamilies:
    def test_registry_names(self):
        from repro.core import PARAMETRIC_FAMILIES

        assert set(PARAMETRIC_FAMILIES) == {
            "ring", "marked-ring", "star", "marked-star", "dp", "dp-prime",
        }

    def test_unknown_family_lists_choices(self):
        from repro.core import parametric_family

        with pytest.raises(FamilyError, match="dp-prime"):
            parametric_family("torus")

    def test_dp_prime_scenario_is_alternating(self):
        from repro.core import parametric_family

        fam = parametric_family("dp-prime")
        assert fam.scenario(4)["alternating"] is True
        assert fam.step == 2
        assert fam.sizes(3) == (2, 4, 6)

    def test_marked_families_mark_one_processor(self):
        from repro.core import parametric_family

        for name in ("marked-ring", "marked-star"):
            system = parametric_family(name).instantiate(4)
            marked = [p for p in system.processors if system.state0(p) == 1]
            assert len(marked) == 1

    def test_inadmissible_sizes_rejected(self):
        from repro.core import parametric_family

        with pytest.raises(FamilyError):
            parametric_family("dp").instantiate(1)
        with pytest.raises(FamilyError):
            parametric_family("dp-prime").instantiate(5)  # odd

    def test_next_size_steps(self):
        from repro.core import parametric_family

        assert parametric_family("dp-prime").next_size(4) == 6
        assert parametric_family("ring").next_size(4) == 5
