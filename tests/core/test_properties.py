"""Property-based tests on the core theory (hypothesis).

These pin down the structural invariants the paper's theory rests on:

* the three Algorithm-1 engines compute the same partition;
* the similarity labeling is environment-respecting (Theorem 4's
  condition) and is the *coarsest* such labeling;
* SET-model similarity coarsens MULTISET-model similarity (S below Q);
* automorphism orbits refine the similarity labeling (Theorem 10);
* structural (state-blind) labelings coarsen stateful ones;
* labeling algebra: refines is a partial order w.r.t. same_partition.
"""

from hypothesis import given, settings

from repro.core import (
    EnvironmentModel,
    Labeling,
    algorithm1_literal,
    algorithm1_signatures,
    algorithm1_worklist,
    compute_similarity_labeling,
    is_environment_respecting,
)
from repro.core.automorphism import orbit_labeling

from ..strategies import systems

FAST = settings(max_examples=40, deadline=None)
SLOW = settings(max_examples=15, deadline=None)


@FAST
@given(systems())
def test_engines_compute_same_partition(system):
    a = algorithm1_literal(system).labeling
    b = algorithm1_signatures(system).labeling
    c = algorithm1_worklist(system).labeling
    assert a.same_partition(b)
    assert b.same_partition(c)


@FAST
@given(systems())
def test_theta_is_environment_respecting(system):
    for model in (EnvironmentModel.MULTISET, EnvironmentModel.SET):
        theta = compute_similarity_labeling(system, model).labeling
        assert is_environment_respecting(system, theta, model)


@FAST
@given(systems())
def test_theta_is_coarsest_stable(system):
    """Any environment-respecting labeling refines Theta."""
    theta = compute_similarity_labeling(system).labeling
    unique = Labeling.trivial_supersimilarity(system.nodes)
    assert unique.refines(theta)
    # And splitting any Theta class must break environment-respect or
    # equal Theta (coarsest = no strictly coarser stable labeling exists;
    # we check the dual: merging two Theta classes breaks stability).
    blocks = theta.blocks
    if len(blocks) >= 2:
        merged = {n: theta[n] for n in system.nodes}
        kinds = {}
        for block in blocks:
            witness = next(iter(block))
            kind = "P" if system.network.is_processor(witness) else "V"
            kinds.setdefault(kind, []).append(block)
        for kind, kind_blocks in kinds.items():
            if len(kind_blocks) >= 2:
                a, b = kind_blocks[0], kind_blocks[1]
                label = merged[next(iter(a))]
                for n in b:
                    merged[n] = label
                coarser = Labeling(merged)
                assert not is_environment_respecting(system, coarser)
                break


@FAST
@given(systems())
def test_set_model_coarsens_multiset(system):
    multiset = compute_similarity_labeling(system, EnvironmentModel.MULTISET).labeling
    set_model = compute_similarity_labeling(system, EnvironmentModel.SET).labeling
    assert multiset.refines(set_model)


@FAST
@given(systems())
def test_stateless_coarsens_stateful(system):
    stateful = compute_similarity_labeling(system, include_state=True).labeling
    structural = compute_similarity_labeling(system, include_state=False).labeling
    assert stateful.refines(structural)


@SLOW
@given(systems(max_processors=4, max_variables=3))
def test_orbits_refine_theta(system):
    """Theorem 10: symmetric nodes are similar."""
    orbits = orbit_labeling(system)
    theta = compute_similarity_labeling(system).labeling
    assert orbits.refines(theta)


@FAST
@given(systems())
def test_refines_antisymmetry(system):
    theta = compute_similarity_labeling(system).labeling
    assert theta.refines(theta)
    assert theta.same_partition(theta)


@FAST
@given(systems())
def test_canonical_labels_split_by_kind(system):
    theta = compute_similarity_labeling(system).labeling
    for node in system.nodes:
        expected = "P" if system.network.is_processor(node) else "V"
        assert theta[node].kind == expected


@FAST
@given(systems())
def test_environment_respecting_closed_under_join(system):
    """Why Theta exists: Theorem-4 labelings are a join-semilattice.

    The join of the similarity labeling with any coarsening of it that is
    still environment-respecting must itself be environment-respecting;
    more strongly, joining Theta with the orbit labeling (both
    environment-respecting by Theorems 4/10) stays environment-respecting.
    """
    from repro.core.automorphism import orbit_labeling
    from repro.core.labeling import join
    from repro.core.environment import is_environment_respecting

    theta = compute_similarity_labeling(system).labeling
    orbits = orbit_labeling(system)
    joined = join(theta, orbits)
    assert is_environment_respecting(system, joined)
    # And since orbits refine theta, the join is theta itself.
    assert joined.same_partition(theta)


@FAST
@given(systems())
def test_meet_refines_join(system):
    from repro.core.labeling import join
    from repro.core.automorphism import orbit_labeling

    theta = compute_similarity_labeling(system).labeling
    orbits = orbit_labeling(system)
    met = theta.meet(orbits)
    joined = join(theta, orbits)
    assert met.refines(joined)
