"""Unit tests for environment signatures per model (conditions (1)-(3))."""

import pytest

from repro.core import (
    EnvironmentModel,
    InstructionSet,
    Labeling,
    Network,
    System,
    environment_signature,
    is_environment_respecting,
    is_supersimilarity_for,
    same_environment,
    satisfies_extended_locking_condition,
    satisfies_locking_condition,
)
from repro.topologies import figure1_network, figure2_network


def counting_net():
    """u has one a-writer, w has two: MULTISET splits them, SET does not."""
    return Network(
        ("a",),
        {"p1": {"a": "u"}, "p2": {"a": "w"}, "p3": {"a": "w"}},
    )


class TestModelSelection:
    def test_for_instruction_set(self):
        assert EnvironmentModel.for_instruction_set(InstructionSet.S) is EnvironmentModel.SET
        assert EnvironmentModel.for_instruction_set(InstructionSet.Q) is EnvironmentModel.MULTISET
        assert EnvironmentModel.for_instruction_set(InstructionSet.L) is EnvironmentModel.MULTISET


class TestVariableEnvironments:
    def test_multiset_distinguishes_counts(self):
        system = System(counting_net())
        lab = Labeling.trivial_subsimilarity(system.nodes)
        assert not same_environment(system, "u", "w", lab, EnvironmentModel.MULTISET)

    def test_set_ignores_counts(self):
        system = System(counting_net())
        lab = Labeling.trivial_subsimilarity(system.nodes)
        assert same_environment(system, "u", "w", lab, EnvironmentModel.SET)

    def test_state_condition(self):
        system = System(counting_net(), {"u": 1})
        lab = Labeling.trivial_subsimilarity(system.nodes)
        assert not same_environment(system, "u", "w", lab, EnvironmentModel.SET)
        assert same_environment(
            system, "u", "w", lab, EnvironmentModel.SET, include_state=False
        )


class TestProcessorEnvironments:
    def test_neighbor_labels_matter(self):
        system = System(counting_net())
        lab = Labeling({"p1": 0, "p2": 0, "p3": 0, "u": "U", "w": "W"})
        assert not same_environment(system, "p1", "p2", lab)
        assert same_environment(system, "p2", "p3", lab)

    def test_kind_never_collides(self):
        system = System(figure1_network())
        lab = Labeling.trivial_subsimilarity(system.nodes)
        sig_p = environment_signature(system, "p", lab)
        sig_v = environment_signature(system, "v", lab)
        assert sig_p != sig_v


class TestEnvironmentRespecting:
    def test_trivial_unique_labeling_respects(self):
        system = System(figure2_network())
        lab = Labeling.trivial_supersimilarity(system.nodes)
        assert is_environment_respecting(system, lab)

    def test_all_same_label_does_not_respect_fig2(self):
        system = System(figure2_network())
        lab = Labeling.trivial_subsimilarity(system.nodes)
        assert not is_environment_respecting(system, lab)

    def test_figure1_all_processors_same_respects(self):
        system = System(figure1_network())
        lab = Labeling({"p": 0, "q": 0, "v": 1})
        assert is_environment_respecting(system, lab)


class TestLockingConditions:
    def test_figure1_same_label_violates_locking(self):
        net = figure1_network()
        lab = Labeling({"p": 0, "q": 0, "v": 1})
        assert not satisfies_locking_condition(net, lab)

    def test_figure1_distinct_labels_satisfy_locking(self):
        net = figure1_network()
        lab = Labeling({"p": 0, "q": 1, "v": 2})
        assert satisfies_locking_condition(net, lab)

    def test_different_names_ok_for_locking_but_not_extended(self):
        net = Network(
            ("a", "b"),
            {"p1": {"a": "v", "b": "w"}, "p2": {"a": "w", "b": "v"}},
        )
        lab = Labeling({"p1": 0, "p2": 0, "v": 1, "w": 1})
        assert satisfies_locking_condition(net, lab)
        assert not satisfies_extended_locking_condition(net, lab)


class TestSupersimilarityDispatch:
    def test_q_dispatch(self):
        system = System(figure1_network(), None, InstructionSet.Q)
        lab = Labeling({"p": 0, "q": 0, "v": 1})
        assert is_supersimilarity_for(system, lab)

    def test_l_dispatch_rejects_shared_name(self):
        system = System(figure1_network(), None, InstructionSet.L)
        lab = Labeling({"p": 0, "q": 0, "v": 1})
        assert not is_supersimilarity_for(system, lab)

    def test_s_dispatch_uses_set_model(self):
        system = System(counting_net(), None, InstructionSet.S)
        lab = Labeling({"p1": 0, "p2": 0, "p3": 0, "u": 1, "w": 1})
        assert is_supersimilarity_for(system, lab)
