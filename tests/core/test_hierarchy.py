"""Unit tests for the model-power hierarchy (Sections 6/9)."""

import pytest

from repro.core import (
    MODEL_AXIS,
    POWER_ORDER,
    selection_across_models,
    verify_separation,
)
from repro.topologies import (
    ALL_WITNESSES,
    path,
    ring,
    witness_bounded_s_vs_fair_s,
    witness_l2_vs_l,
    witness_l_vs_q,
    witness_q_vs_bounded_s,
)


class TestReports:
    def test_axis_covers_power_order(self):
        assert set(POWER_ORDER) == {label for label, _, _ in MODEL_AXIS}

    def test_path_solvable_everywhere(self):
        report = selection_across_models(path(3))
        assert set(report.solvable_models()) == set(POWER_ORDER)
        assert report.respects_power_order()

    def test_anonymous_ring_solvable_nowhere(self):
        report = selection_across_models(ring(4))
        assert report.solvable_models() == ()
        assert report.respects_power_order()


class TestSeparations:
    @pytest.mark.parametrize("pair", sorted(ALL_WITNESSES, key=repr))
    def test_witness_separates(self, pair):
        weaker, stronger = pair
        net, state, desc = ALL_WITNESSES[pair]()
        witness = verify_separation(weaker, stronger, net, state, desc)
        assert witness.valid, (
            f"{desc}: expected {weaker} impossible / {stronger} possible, got "
            f"{[(m, witness.report.decisions[m].possible) for m in POWER_ORDER]}"
        )

    @pytest.mark.parametrize(
        "builder",
        [witness_l_vs_q, witness_q_vs_bounded_s, witness_bounded_s_vs_fair_s, witness_l2_vs_l],
    )
    def test_witnesses_respect_monotonicity(self, builder):
        net, state, desc = builder()
        report = selection_across_models(net, state, desc)
        assert report.respects_power_order(), desc


class TestWitnessSchemas:
    def test_star_schema_holds_at_small_sizes(self):
        from repro.core import witness_schema

        schema = witness_schema("Q", "L")
        for n in (2, 3, 5):
            assert schema.holds_at(n), f"star schema failed at n={n}"

    def test_instantiated_witness_is_verified(self):
        from repro.core import witness_schema

        witness = witness_schema("Q", "L").instantiate(3)
        assert witness.valid
        assert not witness.report.decisions["Q"].possible
        assert witness.report.decisions["L"].possible
        assert "n=3" in witness.report.description

    def test_unknown_pair_rejected(self):
        from repro.core import witness_schema
        from repro.exceptions import WitnessRecordError

        with pytest.raises(WitnessRecordError, match="known pairs"):
            witness_schema("fair-S", "L2")

    def test_first_size_inherits_family_minimum(self):
        from repro.core import witness_schema

        assert witness_schema("Q", "L").first_size() >= 2


class TestWitnessRecords:
    def _witness(self, n=3):
        from repro.core import parametric_family, verify_separation

        system = parametric_family("star").instantiate(n)
        witness = verify_separation(
            "Q", "L", system.network, system.initial_state, f"star({n})"
        )
        return witness, system

    def test_round_trip_without_system_is_trusted(self):
        from repro.core import (
            separation_witness_from_json,
            separation_witness_to_json,
        )

        witness, _ = self._witness()
        doc = separation_witness_to_json(witness)
        back = separation_witness_from_json(doc)
        assert back.valid
        assert back.report.decisions["Q"].reason == "recorded"

    def test_round_trip_with_system_reverifies(self):
        from repro.core import (
            separation_witness_from_json,
            separation_witness_to_json,
        )

        witness, system = self._witness()
        doc = separation_witness_to_json(
            witness, system.network, system.initial_state
        )
        assert doc["form"].startswith("b:")
        back = separation_witness_from_json(
            doc, system.network, system.initial_state
        )
        assert back.valid
        assert back.report.decisions["Q"].reason != "recorded"

    def test_wrong_system_rejected_by_form_key(self):
        from repro.core import (
            parametric_family,
            separation_witness_from_json,
            separation_witness_to_json,
        )
        from repro.exceptions import WitnessRecordError

        witness, system = self._witness(3)
        doc = separation_witness_to_json(
            witness, system.network, system.initial_state
        )
        other = parametric_family("star").instantiate(4)
        with pytest.raises(WitnessRecordError, match="canonical-form"):
            separation_witness_from_json(doc, other.network, other.initial_state)

    def test_legacy_repr_key_accepted(self):
        from repro.core import separation_witness_from_json, separation_witness_to_json
        from repro.core.hierarchy import _legacy_form_repr

        witness, system = self._witness()
        doc = separation_witness_to_json(witness)
        doc["form"] = _legacy_form_repr(system.network, system.initial_state)
        back = separation_witness_from_json(
            doc, system.network, system.initial_state
        )
        assert back.valid

    def test_tampered_decisions_rejected(self):
        from repro.core import separation_witness_from_json, separation_witness_to_json
        from repro.exceptions import WitnessRecordError

        witness, system = self._witness()
        doc = separation_witness_to_json(
            witness, system.network, system.initial_state
        )
        doc["decisions"] = dict(doc["decisions"], Q=True)
        with pytest.raises(WitnessRecordError, match="Q"):
            separation_witness_from_json(doc, system.network, system.initial_state)

    def test_malformed_record_rejected(self):
        from repro.core import separation_witness_from_json
        from repro.exceptions import WitnessRecordError

        with pytest.raises(WitnessRecordError, match="malformed"):
            separation_witness_from_json({"weaker": "Q"})

    def test_store_round_trip(self, tmp_path):
        from repro.core import (
            separation_witness_from_json,
            separation_witness_to_json,
        )
        from repro.core.encoding import encode_value
        from repro.store import ContentStore

        witness, system = self._witness()
        doc = separation_witness_to_json(
            witness, system.network, system.initial_state
        )
        store = ContentStore(tmp_path)
        key = encode_value(("witness-record", "Q", "L", 3))
        store.put("witnesses", key, doc)
        loaded = store.get("witnesses", key)
        assert loaded is not None
        back = separation_witness_from_json(
            loaded, system.network, system.initial_state
        )
        assert back.valid
