"""Unit tests for the model-power hierarchy (Sections 6/9)."""

import pytest

from repro.core import (
    MODEL_AXIS,
    POWER_ORDER,
    selection_across_models,
    verify_separation,
)
from repro.topologies import (
    ALL_WITNESSES,
    path,
    ring,
    witness_bounded_s_vs_fair_s,
    witness_l2_vs_l,
    witness_l_vs_q,
    witness_q_vs_bounded_s,
)


class TestReports:
    def test_axis_covers_power_order(self):
        assert set(POWER_ORDER) == {label for label, _, _ in MODEL_AXIS}

    def test_path_solvable_everywhere(self):
        report = selection_across_models(path(3))
        assert set(report.solvable_models()) == set(POWER_ORDER)
        assert report.respects_power_order()

    def test_anonymous_ring_solvable_nowhere(self):
        report = selection_across_models(ring(4))
        assert report.solvable_models() == ()
        assert report.respects_power_order()


class TestSeparations:
    @pytest.mark.parametrize("pair", sorted(ALL_WITNESSES, key=repr))
    def test_witness_separates(self, pair):
        weaker, stronger = pair
        net, state, desc = ALL_WITNESSES[pair]()
        witness = verify_separation(weaker, stronger, net, state, desc)
        assert witness.valid, (
            f"{desc}: expected {weaker} impossible / {stronger} possible, got "
            f"{[(m, witness.report.decisions[m].possible) for m in POWER_ORDER]}"
        )

    @pytest.mark.parametrize(
        "builder",
        [witness_l_vs_q, witness_q_vs_bounded_s, witness_bounded_s_vs_fair_s, witness_l2_vs_l],
    )
    def test_witnesses_respect_monotonicity(self, builder):
        net, state, desc = builder()
        report = selection_across_models(net, state, desc)
        assert report.respects_power_order(), desc
