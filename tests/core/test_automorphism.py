"""Unit tests for the automorphism matcher."""

import pytest

from repro.core import InstructionSet, Network, System
from repro.core.automorphism import (
    are_symmetric,
    automorphism_orbits,
    find_automorphism,
    find_transitive_generator,
    iter_automorphisms,
    orbit_labeling,
    permutation_order,
    restriction_is_single_cycle,
    stabilizer_chain,
)
from repro.topologies import dining_system, figure2_network, ring, star


def ring_sys(n, state=None):
    return System(ring(n), state, InstructionSet.Q)


class TestEnumeration:
    def test_ring_group_order(self):
        # A uniformly oriented labeled ring has exactly the n rotations
        # (reflections reverse edge names, so they are not automorphisms).
        autos = list(iter_automorphisms(ring_sys(5)))
        assert len(autos) == 5

    def test_identity_always_present(self):
        autos = list(iter_automorphisms(ring_sys(3)))
        assert any(all(a[n] == n for n in a) for a in autos)

    def test_star_leaf_permutations(self):
        system = System(star(3), None, InstructionSet.Q)
        autos = list(iter_automorphisms(system))
        assert len(autos) == 6  # 3! leaf permutations

    def test_limit_respected(self):
        system = System(star(4), None, InstructionSet.Q)
        assert len(list(iter_automorphisms(system, limit=5))) == 5

    def test_state_marks_break_symmetry(self):
        autos = list(iter_automorphisms(ring_sys(4, {"p0": 1})))
        assert len(autos) == 1  # identity only

    def test_ignore_state_restores_symmetry(self):
        autos = list(iter_automorphisms(ring_sys(4, {"p0": 1}), ignore_state=True))
        assert len(autos) == 4


class TestQueries:
    def test_are_symmetric_ring(self):
        system = ring_sys(4)
        assert are_symmetric(system, "p0", "p2")
        assert are_symmetric(system, "v0", "v3")

    def test_find_automorphism_respects_partial(self):
        system = ring_sys(4)
        auto = find_automorphism(system, {"p0": "p2"})
        assert auto is not None
        assert auto["p0"] == "p2"
        assert auto["v0"] == "v2"  # rotation forced

    def test_figure2_asymmetric_pair(self):
        system = System(figure2_network(), None, InstructionSet.Q)
        assert are_symmetric(system, "p1", "p2")
        assert not are_symmetric(system, "p1", "p3")

    def test_orbits_ring(self):
        orbits = automorphism_orbits(ring_sys(5))
        sizes = sorted(len(o) for o in orbits)
        assert sizes == [5, 5]  # processors and variables

    def test_orbit_labeling_blocks(self):
        lab = orbit_labeling(ring_sys(3))
        assert len(lab.labels) == 2


class TestPermutationHelpers:
    def test_permutation_order(self):
        perm = {"a": "b", "b": "c", "c": "a", "x": "x"}
        assert permutation_order(perm) == 3

    def test_restriction_is_single_cycle(self):
        perm = {"a": "b", "b": "a", "c": "c"}
        assert restriction_is_single_cycle(perm, ["a", "b"])
        assert not restriction_is_single_cycle(perm, ["a", "b", "c"])

    def test_restriction_tolerates_nodes_outside_the_domain(self):
        # Regression: probing an orbit against a permutation that does
        # not mention every node used to raise KeyError mid-walk.  A
        # node outside the domain cannot lie on a cycle, so the answer
        # is False — whether the foreign node is the start point or is
        # reached part-way through the walk.
        perm = {"a": "b", "b": "a"}
        assert not restriction_is_single_cycle(perm, ["a", "b", "zz"])
        assert not restriction_is_single_cycle(perm, ["zz"])
        bigger = {"a": "b", "b": "c"}  # c missing from the domain
        assert not restriction_is_single_cycle(bigger, ["a", "b", "c"])

    def test_transitive_generator_on_prime_ring(self):
        system = dining_system(5).with_instruction_set(InstructionSet.Q)
        sigma = find_transitive_generator(system, system.processors)
        assert sigma is not None
        assert permutation_order(sigma) == 5


class TestStabilizerChain:
    def test_order_matches_enumeration(self):
        for system in (
            ring_sys(5),
            ring_sys(4, {"p0": 1}),
            System(figure2_network(), None, InstructionSet.Q),
            dining_system(6, alternating=True),
        ):
            chain = stabilizer_chain(system)
            assert chain.order == len(list(iter_automorphisms(system)))

    def test_star_order_is_factorial_without_enumeration(self):
        # The star's 5! = 120 elements are counted from orbit sizes, not
        # listed; enumeration would need 120 yields to agree.
        system = System(star(5), None, InstructionSet.Q)
        chain = stabilizer_chain(system)
        assert chain.order == 120
        assert chain.order == len(list(iter_automorphisms(system)))

    def test_transversals_are_valid_coset_maps(self):
        # Every transversal entry at level i must fix the base points of
        # all earlier levels and send level i's base point to its key.
        system = ring_sys(6)
        chain = stabilizer_chain(system)
        seen_points = []
        for level in chain.levels:
            i = level.point_index
            for target, (parr, _varr) in level.transversal.items():
                assert parr[i] == target
                for j in seen_points:
                    assert parr[j] == j
            seen_points.append(i)
