"""Tests for quotient systems and canonical forms."""

import pytest

from repro.core import (
    InstructionSet,
    System,
    are_isomorphic,
    canonical_form,
    quotient_system,
    similarity_structures_equal,
)
from repro.topologies import dining_system, figure1_system, figure2_system, path, ring, star


class TestQuotient:
    def test_figure2_quotient_shape(self, fig2_q):
        q = quotient_system(fig2_q)
        assert q.processor_class_count == 2
        assert q.variable_class_count == 3
        sizes = sorted(size for _l, size, _s in q.pclasses)
        assert sizes == [1, 2]

    def test_anonymous_ring_quotient_is_tiny(self):
        system = System(ring(7), None, InstructionSet.Q)
        q = quotient_system(system)
        assert q.processor_class_count == 1
        assert q.variable_class_count == 1
        assert q.class_size(q.pclasses[0][0]) == 7

    def test_quotient_edge_counts(self, fig1_q):
        q = quotient_system(fig1_q)
        assert len(q.edges) == 1
        assert q.edges[0].count == 2  # two n-writers per (the) variable

    def test_selection_off_the_quotient(self, fig2_q, fig1_q):
        assert quotient_system(fig2_q).selection_possible()
        assert not quotient_system(fig1_q).selection_possible()

    def test_unknown_class_size(self, fig1_q):
        with pytest.raises(KeyError):
            quotient_system(fig1_q).class_size("nope")


class TestSimilarityStructure:
    def test_same_system_equal(self, fig2_q):
        assert similarity_structures_equal(fig2_q, fig2_q)

    def test_different_sizes_not_equal(self):
        a = System(star(3), None, InstructionSet.Q)
        b = System(star(4), None, InstructionSet.Q)
        assert not similarity_structures_equal(a, b)

    def test_relabeled_copy_equal(self):
        a = System(ring(4), None, InstructionSet.Q)
        net_b = ring(4, prefix="other")
        b = System(net_b, None, InstructionSet.Q)
        assert similarity_structures_equal(a, b)


class TestIsomorphism:
    def test_renamed_ring_isomorphic(self):
        a = System(ring(5), None, InstructionSet.Q)
        b = System(ring(5, prefix="q"), None, InstructionSet.Q)
        assert are_isomorphic(a, b)

    def test_rotated_mark_isomorphic(self):
        a = System(ring(4), {"p0": 1}, InstructionSet.Q)
        b = System(ring(4), {"p2": 1}, InstructionSet.Q)
        assert are_isomorphic(a, b)

    def test_different_marks_not_isomorphic(self):
        a = System(ring(4), {"p0": 1}, InstructionSet.Q)
        b = System(ring(4), {"p0": 1, "p1": 1}, InstructionSet.Q)
        assert not are_isomorphic(a, b)

    def test_ring_vs_path_not_isomorphic(self):
        a = System(ring(3), None, InstructionSet.Q)
        b = System(path(3), None, InstructionSet.Q)
        assert not are_isomorphic(a, b)

    def test_canonical_form_invariance(self):
        a = System(ring(4), {"p1": 1}, InstructionSet.Q)
        b = System(ring(4), {"p3": 1}, InstructionSet.Q)
        assert canonical_form(a) == canonical_form(b)

    def test_dining_orientations_differ(self):
        a = dining_system(6).with_instruction_set(InstructionSet.Q)
        b = dining_system(6, alternating=True).with_instruction_set(InstructionSet.Q)
        assert not are_isomorphic(a, b)
