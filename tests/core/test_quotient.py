"""Tests for quotient systems and canonical forms."""

import pytest

from repro.core import (
    InstructionSet,
    Network,
    System,
    are_isomorphic,
    canonical_form,
    quotient_system,
    similarity_structures_equal,
)
from repro.topologies import dining_system, figure1_system, figure2_system, path, ring, star


class TestQuotient:
    def test_figure2_quotient_shape(self, fig2_q):
        q = quotient_system(fig2_q)
        assert q.processor_class_count == 2
        assert q.variable_class_count == 3
        sizes = sorted(size for _l, size, _s in q.pclasses)
        assert sizes == [1, 2]

    def test_anonymous_ring_quotient_is_tiny(self):
        system = System(ring(7), None, InstructionSet.Q)
        q = quotient_system(system)
        assert q.processor_class_count == 1
        assert q.variable_class_count == 1
        assert q.class_size(q.pclasses[0][0]) == 7

    def test_quotient_edge_counts(self, fig1_q):
        q = quotient_system(fig1_q)
        assert len(q.edges) == 1
        assert q.edges[0].count == 2  # two n-writers per (the) variable

    def test_selection_off_the_quotient(self, fig2_q, fig1_q):
        assert quotient_system(fig2_q).selection_possible()
        assert not quotient_system(fig1_q).selection_possible()

    def test_unknown_class_size(self, fig1_q):
        with pytest.raises(KeyError):
            quotient_system(fig1_q).class_size("nope")


class TestSimilarityStructure:
    def test_same_system_equal(self, fig2_q):
        assert similarity_structures_equal(fig2_q, fig2_q)

    def test_different_sizes_not_equal(self):
        a = System(star(3), None, InstructionSet.Q)
        b = System(star(4), None, InstructionSet.Q)
        assert not similarity_structures_equal(a, b)

    def test_relabeled_copy_equal(self):
        a = System(ring(4), None, InstructionSet.Q)
        net_b = ring(4, prefix="other")
        b = System(net_b, None, InstructionSet.Q)
        assert similarity_structures_equal(a, b)

    def test_rings_of_different_sizes_share_structure(self):
        """Same similarity structure at different scale: an anonymous
        4-ring and 8-ring both quotient to one processor class and one
        variable class.  Regression: the old check demanded *equal*
        per-class member counts (4 vs 8) instead of proportional ones,
        so any same-structure different-size pair came back unequal."""
        a = System(ring(4), None, InstructionSet.Q)
        b = System(ring(8), None, InstructionSet.Q)
        assert similarity_structures_equal(a, b)
        assert similarity_structures_equal(b, a)

    def test_marked_rings_of_different_sizes_differ(self):
        """Marking breaks the scaling: distance-from-mark classes differ
        in number between a 4-ring and an 8-ring."""
        a = System(ring(4), {"p0": 1}, InstructionSet.Q)
        b = System(ring(8), {"p0": 1}, InstructionSet.Q)
        assert not similarity_structures_equal(a, b)

    def test_figures_still_distinguished(self):
        assert not similarity_structures_equal(figure1_system(), figure2_system())


class TestIsomorphism:
    def test_renamed_ring_isomorphic(self):
        a = System(ring(5), None, InstructionSet.Q)
        b = System(ring(5, prefix="q"), None, InstructionSet.Q)
        assert are_isomorphic(a, b)

    def test_rotated_mark_isomorphic(self):
        a = System(ring(4), {"p0": 1}, InstructionSet.Q)
        b = System(ring(4), {"p2": 1}, InstructionSet.Q)
        assert are_isomorphic(a, b)

    def test_different_marks_not_isomorphic(self):
        a = System(ring(4), {"p0": 1}, InstructionSet.Q)
        b = System(ring(4), {"p0": 1, "p1": 1}, InstructionSet.Q)
        assert not are_isomorphic(a, b)

    def test_ring_vs_path_not_isomorphic(self):
        a = System(ring(3), None, InstructionSet.Q)
        b = System(path(3), None, InstructionSet.Q)
        assert not are_isomorphic(a, b)

    def test_canonical_form_invariance(self):
        a = System(ring(4), {"p1": 1}, InstructionSet.Q)
        b = System(ring(4), {"p3": 1}, InstructionSet.Q)
        assert canonical_form(a) == canonical_form(b)

    def test_dining_orientations_differ(self):
        a = dining_system(6).with_instruction_set(InstructionSet.Q)
        b = dining_system(6, alternating=True).with_instruction_set(InstructionSet.Q)
        assert not are_isomorphic(a, b)


class TestDisconnectedIsomorphism:
    """Regression: the union-automorphism matcher pins one processor,
    which only forces that processor's *component* to swap sides; on a
    disconnected system the other components could map to themselves and
    the side-swap check reported a false negative."""

    def _sys(self, edges, state=None):
        return System(Network(["n"], edges), state, InstructionSet.Q)

    def test_two_component_systems_isomorphic(self):
        a = self._sys({"p0": {"n": "v0"}, "p1": {"n": "v1"}})
        b = self._sys({"q0": {"n": "w0"}, "q1": {"n": "w1"}})
        assert are_isomorphic(a, b)

    def test_mark_on_either_component_matches(self):
        a = self._sys({"p0": {"n": "v0"}, "p1": {"n": "v1"}}, {"p0": 1})
        b = self._sys({"q0": {"n": "w0"}, "q1": {"n": "w1"}}, {"q1": 1})
        assert are_isomorphic(a, b)

    def test_component_structure_distinguished(self):
        split = self._sys({"p0": {"n": "v0"}, "p1": {"n": "v1"}})
        shared = self._sys({"p0": {"n": "v0"}, "p1": {"n": "v0"}})
        assert not are_isomorphic(split, shared)

    def test_component_multiset_distinguished(self):
        # two 2-processor components vs a 3+1 split: same processor and
        # variable counts, different component multisets
        a = self._sys(
            {"p0": {"n": "v0"}, "p1": {"n": "v0"},
             "p2": {"n": "v1"}, "p3": {"n": "v1"}}
        )
        b = self._sys(
            {"p0": {"n": "v0"}, "p1": {"n": "v0"},
             "p2": {"n": "v0"}, "p3": {"n": "v1"}}
        )
        assert not are_isomorphic(a, b)

    def test_permuted_components_match(self):
        # same component multiset listed in a different order
        a = self._sys(
            {"p0": {"n": "v0"}, "p1": {"n": "v0"}, "p2": {"n": "v1"}}
        )
        b = self._sys(
            {"p0": {"n": "v1"}, "p1": {"n": "v0"}, "p2": {"n": "v1"}}
        )
        assert are_isomorphic(a, b)


class TestProcessorFreeIsomorphism:
    """Regression: ``are_isomorphic`` indexed ``a.processors[0]`` and so
    crashed with IndexError on processor-free systems (declared
    variables, no edges)."""

    def _system(self, variables, state=None):
        net = Network(["n"], {}, variables=variables)
        return System(net, state, InstructionSet.Q)

    def test_renamed_processor_free_systems_isomorphic(self):
        a = self._system(["x", "y"])
        b = self._system(["u", "w"])
        assert are_isomorphic(a, b)

    def test_state_multisets_decide(self):
        unmarked = self._system(["x", "y"])
        marked = self._system(["x", "y"], {"x": 1})
        other_marked = self._system(["u", "w"], {"w": 1})
        assert not are_isomorphic(unmarked, marked)
        assert are_isomorphic(marked, other_marked)

    def test_variable_count_mismatch(self):
        assert not are_isomorphic(self._system(["x", "y"]), self._system(["x"]))


class TestIsolatedVariableIsomorphism:
    """Variables declared without edges are invisible to the edge-driven
    automorphism matcher; their initial states must still be compared."""

    def _system(self, isolated, state=None):
        net = Network(["n"], {"p0": {"n": "v0"}}, variables=["v0", isolated])
        return System(net, state, InstructionSet.Q)

    def test_renamed_isolated_variable_isomorphic(self):
        assert are_isomorphic(self._system("z"), self._system("t"))

    def test_marked_isolated_variable_matches_marked(self):
        a = self._system("z", {"z": 1})
        b = self._system("t", {"t": 1})
        assert are_isomorphic(a, b)

    def test_marked_isolated_variable_differs_from_unmarked(self):
        assert not are_isomorphic(self._system("z", {"z": 1}), self._system("t"))
