"""Unit tests for decide_selection across all models (Theorems 1-9)."""

import pytest

from repro.core import (
    Family,
    InstructionSet,
    ScheduleClass,
    System,
    decide_family_selection,
    decide_selection,
)
from repro.topologies import (
    dining_system,
    figure1_network,
    figure1_system,
    figure2_system,
    figure3_system,
    path,
    ring,
    star,
)


class TestTheorem1:
    def test_general_schedules_always_impossible(self):
        system = figure2_system().with_schedule_class(ScheduleClass.GENERAL)
        decision = decide_selection(system)
        assert not decision.possible
        assert decision.theorem == "Theorem 1"


class TestQ:
    def test_figure1_impossible(self, fig1_q):
        decision = decide_selection(fig1_q)
        assert not decision.possible
        assert "Theorem 3" in decision.theorem

    def test_figure2_possible_p3(self, fig2_q):
        decision = decide_selection(fig2_q)
        assert decision.possible
        assert decision.unique_processors == ("p3",)
        assert decision.elite is not None

    def test_marked_ring_possible(self, marked_ring5_q):
        assert decide_selection(marked_ring5_q).possible

    def test_anonymous_ring_impossible(self):
        assert not decide_selection(System(ring(4), None, InstructionSet.Q)).possible


class TestL:
    def test_figure1_possible_in_l(self, fig1_l):
        decision = decide_selection(fig1_l)
        assert decision.possible
        assert decision.theorem == "Theorem 9"

    def test_star_possible_in_l(self):
        assert decide_selection(System(star(3), None, InstructionSet.L)).possible

    def test_dp5_impossible_in_l(self, dp5_l):
        decision = decide_selection(dp5_l)
        assert not decision.possible
        assert "Theorem 8" in decision.theorem

    def test_dp6_leader_election_impossible_in_l(self, dp6_l):
        # DP' is about neighbor-dissimilarity, not a unique leader: the
        # rotationally symmetric relabel versions pair every philosopher.
        assert not decide_selection(dp6_l).possible


class TestL2:
    def test_swapped_pair_possible_only_in_l2(self):
        from repro.core import Network

        net = Network(
            ("a", "b"),
            {"p1": {"a": "v", "b": "w"}, "p2": {"a": "w", "b": "v"}},
        )
        in_l = decide_selection(System(net, None, InstructionSet.L))
        in_l2 = decide_selection(System(net, None, InstructionSet.L2))
        assert not in_l.possible
        assert in_l2.possible


class TestS:
    def test_bounded_fair_uses_set_model(self):
        system = figure2_system(InstructionSet.S, ScheduleClass.BOUNDED_FAIR)
        assert not decide_selection(system).possible

    def test_bounded_fair_path_possible(self, path4_s_bf):
        assert decide_selection(path4_s_bf).possible

    def test_fair_s_uses_mimicry(self, fig3_s):
        decision = decide_selection(fig3_s)
        assert decision.possible
        assert decision.unique_processors == ("q", "z")
        assert "mimicry" in decision.theorem


class TestFamilies:
    def test_family_selection_decision(self):
        net = figure1_network()
        fam = Family(
            [
                System(net, {"p": 0, "q": 1}, InstructionSet.Q),
                System(net, {"p": 1, "q": 0}, InstructionSet.Q),
            ]
        )
        decision = decide_family_selection(fam)
        assert decision.possible
        assert decision.theorem == "Theorem 7"

    def test_family_without_elite(self):
        net = figure1_network()
        fam = Family([System(net, None, InstructionSet.Q)])
        decision = decide_family_selection(fam)
        assert not decision.possible
