"""Property tests for canonical forms as isomorphism invariants.

Two directions: renaming a system through a random node permutation must
never change its canonical form (invariance), and a curated family of
pairwise non-isomorphic small systems must get pairwise distinct forms
(enough discrimination for the witness engine's dedup buckets to stay
small).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InstructionSet, System, are_isomorphic, canonical_form
from repro.topologies import (
    alternating_ring,
    figure1_system,
    figure2_system,
    path,
    ring,
    star,
)

from ..strategies import systems

SETTINGS = settings(max_examples=20, deadline=None)


def _permuted_copy(system, seed):
    """An isomorphic copy: node ids shuffled onto fresh ``("r", i)`` ids."""
    nodes = list(system.nodes)
    indices = list(range(len(nodes)))
    random.Random(seed).shuffle(indices)
    mapping = {node: ("r", i) for node, i in zip(nodes, indices)}
    renamed_net = system.network.relabeled(lambda n: mapping[n])
    return System(
        renamed_net,
        {mapping[n]: system.state0(n) for n in nodes},
        system.instruction_set,
        system.schedule_class,
    )


@SETTINGS
@given(systems(), st.integers(min_value=0, max_value=2**32 - 1))
def test_canonical_form_invariant_under_node_permutation(system, seed):
    renamed = _permuted_copy(system, seed)
    assert canonical_form(system) == canonical_form(renamed)


@SETTINGS
@given(systems(), st.integers(min_value=0, max_value=2**32 - 1))
def test_permuted_copy_is_isomorphic(system, seed):
    assert are_isomorphic(system, _permuted_copy(system, seed))


def _curated_family():
    return [
        ("ring3", System(ring(3), None, InstructionSet.Q)),
        ("marked-ring3", System(ring(3), {"p0": 1}, InstructionSet.Q)),
        ("ring4", System(ring(4), None, InstructionSet.Q)),
        ("alt-ring6", System(alternating_ring(6), None, InstructionSet.Q)),
        ("path3", System(path(3), None, InstructionSet.Q)),
        ("star3", System(star(3), None, InstructionSet.Q)),
        ("figure1", figure1_system()),
        ("figure2", figure2_system()),
    ]


def test_curated_non_isomorphic_family_has_distinct_forms():
    family = _curated_family()
    for i, (name_a, a) in enumerate(family):
        for name_b, b in family[i + 1 :]:
            assert canonical_form(a) != canonical_form(b), (name_a, name_b)
            assert not are_isomorphic(a, b), (name_a, name_b)


def test_forms_are_hashable_dict_keys():
    forms = {canonical_form(s): name for name, s in _curated_family()}
    assert len(forms) == len(_curated_family())
