"""Unit tests for the similarity front door (Theorems 2-4 helpers)."""

from repro.core import (
    InstructionSet,
    Labeling,
    System,
    are_similar,
    every_processor_is_paired,
    is_similarity_labeling,
    is_subsimilarity_labeling,
    is_supersimilarity_labeling,
    processor_similarity_classes,
    similarity_classes,
    similarity_labeling,
    similarity_result,
)
from repro.topologies import figure1_system, figure2_system, ring


class TestQueries:
    def test_are_similar_figure1(self, fig1_q):
        assert are_similar(fig1_q, "p", "q")

    def test_are_similar_figure2(self, fig2_q):
        assert are_similar(fig2_q, "p1", "p2")
        assert not are_similar(fig2_q, "p1", "p3")

    def test_similarity_classes_cover_nodes(self, fig2_q):
        blocks = similarity_classes(fig2_q)
        assert sorted(n for b in blocks for n in b) == sorted(fig2_q.nodes)

    def test_processor_similarity_classes(self, fig2_q):
        classes = processor_similarity_classes(fig2_q)
        assert frozenset({"p1", "p2"}) in classes
        assert frozenset({"p3"}) in classes


class TestLabelingPredicates:
    def test_theta_is_similarity_labeling(self, fig2_q):
        theta = similarity_labeling(fig2_q)
        assert is_similarity_labeling(fig2_q, theta)
        assert is_supersimilarity_labeling(fig2_q, theta)
        assert is_subsimilarity_labeling(fig2_q, theta)

    def test_trivial_labelings(self, fig2_q):
        unique = Labeling.trivial_supersimilarity(fig2_q.nodes)
        allsame = Labeling.trivial_subsimilarity(fig2_q.nodes)
        assert is_supersimilarity_labeling(fig2_q, unique)
        assert not is_subsimilarity_labeling(fig2_q, unique)
        assert is_subsimilarity_labeling(fig2_q, allsame)
        assert not is_supersimilarity_labeling(fig2_q, allsame)


class TestPairing:
    def test_figure1_every_processor_paired(self, fig1_q):
        assert every_processor_is_paired(fig1_q)

    def test_figure2_not_every_processor_paired(self, fig2_q):
        assert not every_processor_is_paired(fig2_q)

    def test_anonymous_ring_paired(self):
        system = System(ring(4), None, InstructionSet.Q)
        assert every_processor_is_paired(system)


class TestResult:
    def test_result_contains_stats(self, fig1_q):
        result = similarity_result(fig1_q)
        assert result.stats.classes == len(result.labeling.labels)
