"""Analytic formulas agree with Monte-Carlo measurements."""

import pytest

from repro.randomized import (
    election_statistics,
    ir_expected_messages,
    ir_expected_phases,
    ir_no_tie_probability,
    lr_all_same_direction_probability,
)


class TestNoTieProbability:
    def test_single_candidate(self):
        assert ir_no_tie_probability(1, 2) == 1.0

    def test_two_candidates_two_ids(self):
        # Unique max iff the two draws differ: probability 1/2.
        assert ir_no_tie_probability(2, 2) == pytest.approx(0.5)

    def test_large_id_space_approaches_one(self):
        assert ir_no_tie_probability(3, 1000) > 0.99

    def test_monotone_in_id_space(self):
        probs = [ir_no_tie_probability(4, s) for s in (2, 4, 8, 32)]
        assert probs == sorted(probs)


class TestExpectedPhases:
    def test_two_two_is_two(self):
        # Geometric with success probability 1/2.
        assert ir_expected_phases(2, 2) == pytest.approx(2.0)

    def test_matches_monte_carlo(self):
        for n, s in ((2, 2), (4, 2), (5, 4)):
            analytic = ir_expected_phases(n, s)
            measured = election_statistics(n, id_space=s, trials=600, seed=17).mean_phases
            assert measured == pytest.approx(analytic, rel=0.15)

    def test_messages_match_monte_carlo(self):
        n, s = 5, 2
        analytic = ir_expected_messages(n, s)
        measured = election_statistics(n, id_space=s, trials=600, seed=3).mean_messages
        assert measured == pytest.approx(analytic, rel=0.15)


class TestDegenerateIdSpace:
    """Regression: ``id_space=1`` with two or more candidates used to die
    with ZeroDivisionError inside the phase recurrence (every phase is an
    all-way tie, so the self-loop probability is 1 and the expectation is
    infinite).  Both analytics now explain that instead."""

    def test_expected_phases_rejects_unwinnable_election(self):
        with pytest.raises(ValueError, match="never elects"):
            ir_expected_phases(2, 1)
        with pytest.raises(ValueError, match="never elects"):
            ir_expected_phases(5, 1)

    def test_expected_messages_rejects_unwinnable_election(self):
        with pytest.raises(ValueError, match="never elects"):
            ir_expected_messages(3, 1)

    def test_single_candidate_still_fine(self):
        # One candidate wins by default regardless of the id space.
        assert ir_expected_phases(1, 1) == 0.0


class TestLehmannRabin:
    def test_trap_probability_vanishes(self):
        assert lr_all_same_direction_probability(5) == pytest.approx(1 / 16)
        assert lr_all_same_direction_probability(10) < 0.01
