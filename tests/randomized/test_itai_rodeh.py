"""Tests for Itai-Rodeh anonymous-ring election."""

import pytest

from repro.randomized import elect, election_statistics


class TestElect:
    def test_single_processor(self):
        result = elect(1)
        assert result.leader == 0
        assert result.phases == 0

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_always_elects(self, n):
        for seed in range(10):
            result = elect(n, seed=seed)
            assert result.elected
            assert 0 <= result.leader < n

    def test_deterministic_by_seed(self):
        assert elect(6, seed=42) == elect(6, seed=42)

    def test_candidates_shrink(self):
        result = elect(8, id_space=2, seed=1)
        counts = result.candidates_per_phase
        assert counts[0] == 8
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            elect(0)

    def test_messages_grow_with_phases(self):
        result = elect(5, seed=0)
        assert result.messages >= 5 * 5  # at least one full phase


class TestStatistics:
    def test_success_rate_is_one(self):
        stats = election_statistics(5, trials=50, seed=9)
        assert stats.success_rate == 1.0

    def test_larger_id_space_fewer_phases(self):
        small = election_statistics(6, id_space=2, trials=100, seed=3)
        large = election_statistics(6, id_space=64, trials=100, seed=3)
        assert large.mean_phases < small.mean_phases

    def test_mean_phases_reasonable(self):
        # With id_space=2 and n=2 the per-phase tie probability is 1/2,
        # so the expectation is near 2 phases.
        stats = election_statistics(2, id_space=2, trials=400, seed=5)
        assert 1.5 < stats.mean_phases < 2.6
