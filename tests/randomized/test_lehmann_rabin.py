"""Tests for the Lehmann-Rabin randomized dining philosophers."""

import pytest

from repro.core import InstructionSet
from repro.runtime import RandomFairScheduler, RoundRobinScheduler
from repro.randomized import LehmannRabinProgram, run_lehmann_rabin
from repro.topologies import adjacent_pairs, dining_system


@pytest.mark.parametrize("n", [3, 5])
def test_progress_on_prime_tables(n):
    """Randomization feeds everyone where determinism deadlocks (Sec. 8)."""
    system = dining_system(n, instruction_set=InstructionSet.L)
    report = run_lehmann_rabin(
        system,
        RandomFairScheduler(system.processors, seed=1),
        steps=8_000,
        adjacent=adjacent_pairs(system),
        seed=7,
    )
    assert report.safety_ok
    assert report.everyone_ate


def test_progress_under_round_robin():
    system = dining_system(5, instruction_set=InstructionSet.L)
    report = run_lehmann_rabin(
        system,
        RoundRobinScheduler(system.processors),
        steps=8_000,
        adjacent=adjacent_pairs(system),
        seed=3,
    )
    assert report.safety_ok
    assert report.everyone_ate


def test_seed_reproducible():
    system = dining_system(5, instruction_set=InstructionSet.L)
    kwargs = dict(
        scheduler=RoundRobinScheduler(system.processors),
        steps=2_000,
        adjacent=adjacent_pairs(system),
        seed=11,
    )
    a = run_lehmann_rabin(system, kwargs["scheduler"], kwargs["steps"], kwargs["adjacent"], seed=11)
    b = run_lehmann_rabin(system, RoundRobinScheduler(system.processors), 2_000, adjacent_pairs(system), seed=11)
    assert a.meals == b.meals


def test_meal_counts_roughly_balanced():
    system = dining_system(5, instruction_set=InstructionSet.L)
    report = run_lehmann_rabin(
        system,
        RandomFairScheduler(system.processors, seed=2),
        steps=20_000,
        adjacent=adjacent_pairs(system),
        seed=2,
    )
    meals = sorted(report.meals.values())
    assert meals[0] > 0
    assert meals[-1] <= 4 * meals[0]  # no starvation in practice
