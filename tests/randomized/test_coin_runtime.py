"""Tests for the coin-flip runtime extension."""

from repro.core import InstructionSet, System
from repro.runtime import FunctionalProgram, RoundRobinScheduler
from repro.randomized import CoinExecutor, FlipCoin
from repro.topologies import figure1_network


def flipper():
    return FunctionalProgram(
        initial=lambda s0: ("flip",),
        action=lambda st: FlipCoin(2),
        step=lambda st, a, r: ("flipped", r),
    )


def test_coin_results_are_bits():
    system = System(figure1_network(), None, InstructionSet.Q)
    ex = CoinExecutor(system, flipper(), RoundRobinScheduler(system.processors), seed=0)
    ex.run(2)
    for p in system.processors:
        assert ex.local[p][1] in (0, 1)


def test_seeded_reproducibility():
    system = System(figure1_network(), None, InstructionSet.Q)
    runs = []
    for _ in range(2):
        ex = CoinExecutor(system, flipper(), RoundRobinScheduler(system.processors), seed=5)
        ex.run(2)
        runs.append(dict(ex.local))
    assert runs[0] == runs[1]


def test_identical_states_flip_independent_coins():
    """The whole point of randomization: same state, possibly different
    outcome -- lockstep is broken."""
    system = System(figure1_network(), None, InstructionSet.Q)
    diverged = False
    for seed in range(20):
        ex = CoinExecutor(system, flipper(), RoundRobinScheduler(system.processors), seed=seed)
        ex.run(2)
        if ex.local["p"] != ex.local["q"]:
            diverged = True
            break
    assert diverged


def test_sides_parameter():
    system = System(figure1_network(), None, InstructionSet.Q)
    prog = FunctionalProgram(
        initial=lambda s0: ("flip",),
        action=lambda st: FlipCoin(10),
        step=lambda st, a, r: ("flipped", r),
    )
    ex = CoinExecutor(system, prog, RoundRobinScheduler(system.processors), seed=1)
    ex.run(2)
    assert all(0 <= ex.local[p][1] < 10 for p in system.processors)
