"""Tests for the event vocabulary, hub, and the three sinks."""

import io
import json

from repro.obs import (
    CrashManifested,
    EventHub,
    JsonlSink,
    MessageDelivered,
    MetricsSink,
    RefinementCompleted,
    RingBufferSink,
    StepExecuted,
)
from repro.runtime import (
    Executor,
    IdleProgram,
    RoundRobinScheduler,
)
from repro.runtime.executor import StepRecord
from repro.runtime.actions import Internal
from repro.topologies import figure5_system


def fake_record(i=0, p="p0", noop=False):
    return StepRecord(i, p, Internal("i"), None, noop=noop)


class TestEventHub:
    def test_inactive_without_sinks(self):
        hub = EventHub()
        assert not hub.active

    def test_attach_emit_detach(self):
        hub = EventHub()
        ring = hub.attach(RingBufferSink())
        assert hub.active
        hub.emit(StepExecuted(fake_record()))
        assert len(ring) == 1
        hub.detach(ring)
        assert not hub.active

    def test_multiple_sinks_all_observe(self):
        hub = EventHub()
        a, b = hub.attach(RingBufferSink()), hub.attach(RingBufferSink())
        hub.emit(StepExecuted(fake_record()))
        assert len(a) == len(b) == 1


class TestRingBufferSink:
    def test_capacity_keeps_most_recent(self):
        ring = RingBufferSink(capacity=3)
        for i in range(10):
            ring.on_event(StepExecuted(fake_record(i)))
        assert len(ring) == 3
        assert [e.record.index for e in ring.events()] == [7, 8, 9]

    def test_kind_filter(self):
        ring = RingBufferSink()
        ring.on_event(StepExecuted(fake_record()))
        ring.on_event(CrashManifested("p1", 5, 6))
        assert len(ring.events("crash")) == 1
        assert len(ring.events("step")) == 1

    def test_clear(self):
        ring = RingBufferSink()
        ring.on_event(StepExecuted(fake_record()))
        ring.clear()
        assert len(ring) == 0


class TestJsonlSink:
    def test_writes_sorted_key_lines(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.on_event(StepExecuted(fake_record()))
        sink.on_event(MessageDelivered(0, "p0", "p1", "next", "tok"))
        lines = buf.getvalue().splitlines()
        assert sink.lines_written == 2
        for line in lines:
            doc = json.loads(line)
            assert list(doc) == sorted(doc)
        assert json.loads(lines[0])["kind"] == "step"
        assert json.loads(lines[1])["kind"] == "delivery"

    def test_owns_stream_closes_it(self):
        buf = io.StringIO()
        JsonlSink(buf, owns=True).close()
        assert buf.closed
        buf2 = io.StringIO()
        JsonlSink(buf2).close()
        assert not buf2.closed


class TestMetricsSink:
    def test_counts_live_run(self):
        system = figure5_system()
        metrics = MetricsSink()
        ex = Executor(
            system, IdleProgram(),
            RoundRobinScheduler(system.processors), sink=metrics,
        )
        ex.run(30)
        assert metrics.steps == 30
        assert metrics.noop_steps == 0
        assert metrics.steps_by_action == {"Internal": 30}
        assert sum(metrics.steps_by_processor.values()) == 30

    def test_noop_and_crash_and_refinement_accounting(self):
        metrics = MetricsSink()
        metrics.on_event(StepExecuted(fake_record(noop=True)))
        metrics.on_event(CrashManifested("p2", 40, 41))
        metrics.on_event(RefinementCompleted("worklist", 3, 5, 2, 0.25))
        assert metrics.steps == 1
        assert metrics.noop_steps == 1
        assert metrics.steps_by_action == {}
        assert metrics.crashes == [("p2", 40)]
        assert metrics.refinements == [("worklist", 3, 5, 2)]
        assert metrics.timers["refinement:worklist"] == 0.25
        summary = metrics.summary()
        assert summary["noop_steps"] == 1
        assert summary["crashes"] == [("p2", 40)]
