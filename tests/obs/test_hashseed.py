"""Hash-seed determinism: traces must be byte-identical across
``PYTHONHASHSEED`` values.

This is the structural guard against set-iteration-order bugs (the old
``MultiLock`` acquired locks in set order, so its traces varied with the
interpreter's hash randomization).  Each scenario is recorded in two
subprocesses with different hash seeds; the resulting JSONL files must
be equal byte for byte.  One scenario deliberately hammers ``MultiLock``
(dining, both-forks) — before the fix this exact comparison diverged.
"""

import json
import os
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

RECORD_SNIPPET = """
import json, sys
from repro.obs import record_scenario
spec = json.loads(sys.argv[1])
record_scenario(spec, steps=int(sys.argv[2]), path=sys.argv[3])
"""

MP_SNIPPET = """
import io, sys
from repro.messaging import MPExecutor, unidirectional_ring
from repro.obs import JsonlSink
from tests.obs.test_hashseed import TOKEN_PROGRAM
buf = io.StringIO()
mp = unidirectional_ring(6, states={0: 1})
ex = MPExecutor(mp, TOKEN_PROGRAM(), seed=5, sink=JsonlSink(buf))
ex.run_to_quiescence()
with open(sys.argv[1], "w") as h:
    h.write(buf.getvalue())
"""


def TOKEN_PROGRAM():
    from repro.messaging import MPProgram

    class TokenPasser(MPProgram):
        def on_start(self, state0, out_ports=()):
            if state0 == 1:
                return ("sent", 0), [("next", "token")]
            return ("idle", 0), []

        def on_message(self, state, port, payload):
            kind, hops = state
            if kind == "sent":
                return ("done", hops), []
            return ("fwd", hops + 1), [("next", payload)]

    return TokenPasser()


def run_under_hashseed(snippet, seed, args):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(seed)
    env["PYTHONPATH"] = SRC + os.pathsep + os.path.join(SRC, "..")
    subprocess.run(
        [sys.executable, "-c", snippet, *args],
        env=env, check=True, capture_output=True, text=True,
        cwd=os.path.join(SRC, ".."),
    )


SCENARIOS = {
    "multilock-L2": {
        "topology": "dining", "size": 5, "program": "both-forks",
        "scheduler": "k-bounded", "sched_seed": 9,
    },
    "crashed-random": {
        "topology": "ring", "size": 5, "model": "L",
        "program": "random", "program_seed": 2,
        "scheduler": "random", "sched_seed": 4,
        "crash_at": {"p3": 25},
    },
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_bytes_identical_across_hash_seeds(tmp_path, name):
    spec = json.dumps(SCENARIOS[name])
    out0 = str(tmp_path / "seed0.jsonl")
    out1 = str(tmp_path / "seed1.jsonl")
    run_under_hashseed(RECORD_SNIPPET, 0, [spec, "70", out0])
    run_under_hashseed(RECORD_SNIPPET, 1, [spec, "70", out1])
    with open(out0, "rb") as a, open(out1, "rb") as b:
        assert a.read() == b.read()


def test_mp_event_stream_identical_across_hash_seeds(tmp_path):
    out0 = str(tmp_path / "mp0.jsonl")
    out1 = str(tmp_path / "mp1.jsonl")
    run_under_hashseed(MP_SNIPPET, 0, [out0])
    run_under_hashseed(MP_SNIPPET, 1, [out1])
    with open(out0, "rb") as a, open(out1, "rb") as b:
        data = a.read()
        assert data == b.read()
    assert data  # the run actually delivered something
