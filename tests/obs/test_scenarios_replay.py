"""The replay-determinism suite: record a run, reload it, re-run it.

Covers the three workloads named in the issue: a shared-variable run
exercising ``MultiLock`` under L2 (dining, both-forks), a crash-injected
run, and plain ring runs under seeded random scheduling — in both replay
modes.  Divergence detection is tested by tampering with a recorded
digest.
"""

import json

import pytest

from repro.obs import (
    ScenarioError,
    TraceError,
    build_scenario,
    load_trace,
    record_scenario,
    replay_trace,
)

RING_Q = {
    "topology": "ring", "size": 5, "model": "Q",
    "program": "random", "program_seed": 3,
    "scheduler": "random", "sched_seed": 11,
}
MULTILOCK_L2 = {
    "topology": "dining", "size": 5, "program": "both-forks",
    "scheduler": "k-bounded", "sched_seed": 2,
}
CRASHED = {
    "topology": "dining", "size": 6, "program": "left-first",
    "alternating": True, "scheduler": "round-robin",
    "crash_at": {"phil1": 20},
}
GRID_L = {
    "topology": "grid", "size": 3, "model": "L",
    "program": "random", "program_seed": 1,
    "scheduler": "k-bounded", "sched_seed": 7, "k": 20,
}

SCENARIOS = [RING_Q, MULTILOCK_L2, CRASHED, GRID_L]


@pytest.mark.parametrize("spec", SCENARIOS, ids=["ring-Q", "multilock-L2", "crashed", "grid-L"])
@pytest.mark.parametrize("mode", ["schedule", "scheduler"])
def test_round_trip(tmp_path, spec, mode):
    path = str(tmp_path / "run.jsonl")
    summary = record_scenario(spec, steps=80, path=path)
    report = replay_trace(path, mode=mode)
    assert report.ok, report.describe()
    assert report.steps_replayed == 80
    assert report.final_digest == summary["final_digest"]
    assert report.samples_checked == summary["samples"]


def test_recorded_trace_structure(tmp_path):
    path = str(tmp_path / "run.jsonl")
    record_scenario(CRASHED, steps=60, path=path)
    trace = load_trace(path)
    assert trace.header["version"] == 1
    assert trace.scenario["crash_at"] == {"phil1": 20}
    assert len(trace.steps) == 60
    assert trace.end is not None
    assert [doc["p"] for doc in trace.crashes] == ["phil1"]
    # crashed philosopher stops appearing in the schedule after its step
    late = [doc["p"] for doc in trace.steps if doc["i"] >= 20]
    assert "phil1" not in late


def test_multilock_steps_present(tmp_path):
    path = str(tmp_path / "run.jsonl")
    record_scenario(MULTILOCK_L2, steps=80, path=path)
    trace = load_trace(path)
    kinds = {doc["a"] for doc in trace.steps}
    assert "MultiLock" in kinds


def test_tampered_digest_reports_divergent_node(tmp_path):
    path = str(tmp_path / "run.jsonl")
    record_scenario(RING_Q, steps=40, path=path)
    lines = []
    tampered = False
    for raw in open(path, encoding="utf-8"):
        doc = json.loads(raw)
        if doc["kind"] == "config" and doc["step"] > 0 and not tampered:
            doc["digest"] = "0" * 16
            first = sorted(doc["nodes"])[0]
            doc["nodes"][first] = "0" * 16
            tampered = True
        lines.append(json.dumps(doc, sort_keys=True))
    bad = str(tmp_path / "bad.jsonl")
    with open(bad, "w", encoding="utf-8") as h:
        h.write("\n".join(lines) + "\n")
    report = replay_trace(bad)
    assert not report.ok
    assert report.divergence.reason == "config"
    assert report.divergence.node is not None
    assert "divergent node" in report.describe()


def test_tampered_schedule_is_a_schedule_divergence(tmp_path):
    path = str(tmp_path / "run.jsonl")
    record_scenario(RING_Q, steps=20, path=path)
    lines = []
    for raw in open(path, encoding="utf-8"):
        doc = json.loads(raw)
        if doc.get("kind") == "step" and doc["i"] == 7:
            doc["p"] = "p0" if doc["p"] != "p0" else "p1"
        lines.append(json.dumps(doc, sort_keys=True))
    bad = str(tmp_path / "bad.jsonl")
    with open(bad, "w", encoding="utf-8") as h:
        h.write("\n".join(lines) + "\n")
    # scheduler mode rebuilds the seeded scheduler, whose choice at step 7
    # disagrees with the doctored record.
    report = replay_trace(bad, mode="scheduler")
    assert not report.ok
    assert report.divergence.reason == "schedule"
    assert report.divergence.step == 7


class TestTraceParsing:
    def test_missing_header_raises(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"kind": "step", "i": 0}\n')
        with pytest.raises(TraceError, match="header"):
            load_trace(str(p))

    def test_bad_json_raises(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("not json\n")
        with pytest.raises(TraceError, match="invalid JSON"):
            load_trace(str(p))

    def test_empty_file_raises(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("")
        with pytest.raises(TraceError, match="empty"):
            load_trace(str(p))

    def test_wrong_version_raises(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"kind": "header", "version": 99}\n')
        with pytest.raises(TraceError, match="version"):
            load_trace(str(p))


class TestScenarioValidation:
    def test_unknown_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario keys"):
            build_scenario({"topolgy": "ring"})

    def test_unknown_program_rejected(self):
        with pytest.raises(ScenarioError, match="unknown program"):
            build_scenario({"program": "fancy"})

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scheduler"):
            build_scenario({"scheduler": "lifo"})

    def test_crash_on_unknown_processor_rejected(self):
        with pytest.raises(ScenarioError, match="unknown processor"):
            build_scenario({"topology": "ring", "size": 3, "crash_at": {"zz": 5}})

    def test_both_forks_forces_l2(self):
        bundle = build_scenario(MULTILOCK_L2)
        assert bundle.system.instruction_set.name == "L2"
