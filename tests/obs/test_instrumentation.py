"""Events actually flow from every instrumented layer.

One test per emitter: the shared-variable executor, the crash scheduler,
the message-passing executor, and the three refinement engines.
"""

from repro.core import InstructionSet, System
from repro.core.refinement import (
    algorithm1_literal,
    algorithm1_signatures,
    algorithm1_worklist,
    compute_similarity_labeling,
)
from repro.messaging import MPExecutor, MPProgram, unidirectional_ring
from repro.obs import MetricsSink, RingBufferSink
from repro.runtime import (
    Executor,
    IdleProgram,
    RoundRobinScheduler,
    run_with_crash,
)
from repro.topologies import dining_system, ring


class TestExecutorEvents:
    def test_step_events_carry_live_records(self):
        system = dining_system(4)
        ring_sink = RingBufferSink()
        ex = Executor(
            system, IdleProgram(),
            RoundRobinScheduler(system.processors), sink=ring_sink,
        )
        ex.run(8)
        steps = ring_sink.events("step")
        assert len(steps) == 8
        assert [e.record.index for e in steps] == list(range(8))
        assert all(not e.record.noop for e in steps)

    def test_unobserved_run_has_inactive_hub(self):
        system = dining_system(4)
        ex = Executor(system, IdleProgram(), RoundRobinScheduler(system.processors))
        assert not ex.events.active


class TestCrashEvents:
    def test_crash_manifested_once_per_processor(self):
        system = dining_system(4)
        ring_sink = RingBufferSink()
        run_with_crash(
            system, IdleProgram(), RoundRobinScheduler(system.processors),
            {"phil1": 5, "phil2": 9}, steps=30, sink=ring_sink,
        )
        crashes = ring_sink.events("crash")
        assert [(str(e.processor), e.crash_step) for e in crashes] == [
            ("phil1", 5), ("phil2", 9),
        ]
        assert all(e.observed_step >= e.crash_step for e in crashes)


class TestMessagingEvents:
    def test_delivery_events(self):
        class Forward(MPProgram):
            def on_start(self, state0, out_ports=()):
                if state0 == 1:
                    return "sent", [("next", "tok")]
                return "idle", []

            def on_message(self, state, port, payload):
                if state == "sent":
                    return "done", []
                return "fwd", [("next", payload)]

        mp = unidirectional_ring(4, states={0: 1})
        metrics = MetricsSink()
        ex = MPExecutor(mp, Forward(), seed=0, sink=metrics)
        ex.run_to_quiescence()
        assert metrics.deliveries == ex.stats.deliveries == 4


class TestRefinementEvents:
    def test_each_engine_reports_completion(self):
        system = System(ring(6), {"p0": 1}, InstructionSet.Q)
        for engine in (algorithm1_literal, algorithm1_signatures, algorithm1_worklist):
            metrics = MetricsSink()
            engine(system, sink=metrics)
            assert len(metrics.refinements) == 1
            name, rounds, splits, classes = metrics.refinements[0]
            assert classes > 1  # the mark splits the ring
            assert metrics.timers[f"refinement:{name}"] >= 0.0

    def test_round_events_progress(self):
        system = System(ring(8), {"p0": 1}, InstructionSet.Q)
        ring_sink = RingBufferSink()
        algorithm1_signatures(system, sink=ring_sink)
        rounds = ring_sink.events("refinement-round")
        assert rounds
        assert [e.round_index for e in rounds] == list(
            range(1, len(rounds) + 1)
        )

    def test_compute_similarity_labeling_forwards_sink(self):
        system = System(ring(6), {"p0": 1}, InstructionSet.Q)
        metrics = MetricsSink()
        compute_similarity_labeling(system, sink=metrics)
        assert metrics.refinements
