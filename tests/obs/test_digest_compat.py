"""Trace-digest regressions: encoding-based digests, legacy acceptance.

``stable_digest`` used to hash ``repr(value)``, which leaks dict/set
iteration order and repr formatting into recorded traces.  It now hashes
the canonical byte encoding; replay accepts *both* schemes so trace
files recorded before the change keep verifying.
"""

import hashlib

import pytest

from repro.core.encoding import encode_value
from repro.obs import (
    digest_matches,
    legacy_digest,
    load_trace,
    record_scenario,
    replay_trace,
    stable_digest,
)
from repro.obs import trace_io

RING = {
    "topology": "ring", "size": 4, "model": "Q",
    "program": "random", "program_seed": 3,
    "scheduler": "random", "sched_seed": 11,
}


class TestStableDigest:
    def test_hashes_canonical_encoding_not_repr(self):
        value = {"b": 2, "a": (1, 2)}
        assert stable_digest(value) == hashlib.sha256(
            encode_value(value)
        ).hexdigest()[:16]
        assert stable_digest(value) != legacy_digest(value)

    def test_dict_insertion_order_invariant(self):
        # repr() distinguishes insertion orders; the encoding must not.
        ab = dict([("a", 1), ("b", 2)])
        ba = dict([("b", 2), ("a", 1)])
        assert repr(ab) != repr(ba)
        assert stable_digest(ab) == stable_digest(ba)
        assert legacy_digest(ab) != legacy_digest(ba)


class TestDigestMatches:
    @pytest.mark.parametrize("value", [0, "x", (1, "y"), {"a": [1]}, None])
    def test_accepts_both_schemes(self, value):
        assert digest_matches(stable_digest(value), value)
        assert digest_matches(legacy_digest(value), value)

    def test_rejects_wrong_value_and_missing_digest(self):
        assert not digest_matches(stable_digest("x"), "y")
        assert not digest_matches(legacy_digest("x"), "y")
        assert not digest_matches(None, "x")


class TestLegacyTraceReplay:
    def test_legacy_trace_still_verifies(self, tmp_path, monkeypatch):
        """Regression: a trace recorded under the repr-digest scheme must
        replay cleanly through the new matcher."""
        path = str(tmp_path / "legacy.jsonl")
        with monkeypatch.context() as patch:
            # Recording resolves digests through the trace_io module
            # globals, so this produces a genuine pre-change trace file.
            patch.setattr(trace_io, "stable_digest", trace_io.legacy_digest)
            record_scenario(RING, steps=40, path=path)

        # Prove the file really carries legacy digests: the same run
        # recorded unpatched ends on a different digest (the schemes
        # agree only by a 2^-64 collision).
        fresh = str(tmp_path / "fresh.jsonl")
        record_scenario(RING, steps=40, path=fresh)
        assert load_trace(path).end["digest"] != load_trace(fresh).end["digest"]

        report = replay_trace(path)
        assert report.ok, report.describe()

    def test_new_trace_replays_and_tampering_still_detected(self, tmp_path):
        path = str(tmp_path / "fresh.jsonl")
        record_scenario(RING, steps=40, path=path)
        assert replay_trace(path).ok

        # Corrupt the end digest: neither scheme may accept it.
        lines = open(path).read().splitlines()
        lines[-1] = lines[-1].replace(
            load_trace(path).end["digest"], "0" * 16
        )
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        report = replay_trace(path)
        assert not report.ok
