"""MP trace recording and replay: determinism, divergence, parity.

The acceptance bar: recording a lossy + duplicating + crash-injected MP
scenario and replaying it must agree byte for byte — across
``PYTHONHASHSEED`` values — and a perturbed seed must fail with a named
first-divergent delivery, not a vague mismatch.
"""

import json

import pytest

from repro.obs import (
    ScenarioError,
    build_mp_scenario,
    load_trace,
    record_mp_scenario,
    replay_mp_trace,
    replay_trace,
)
from tests.obs.test_hashseed import run_under_hashseed

FAULTY_SPEC = {
    "kind": "mp",
    "topology": "ring",
    "size": 6,
    "program": "chang-roberts",
    "ids": [5, 0, 3, 1, 4, 2],
    "scheduler": "random",
    "sched_seed": 2,
    "stubborn": True,
    "faults": {
        "default": {"drop": 0.25, "duplicate": 0.15, "delay": 0.1, "max_delay": 4},
        "crash_at": {"p4": 50},
        "seed": 11,
    },
}

MP_RECORD_SNIPPET = """
import json, sys
from repro.obs import record_mp_scenario
spec = json.loads(sys.argv[1])
record_mp_scenario(spec, deliveries=int(sys.argv[2]), path=sys.argv[3])
"""


def _record(tmp_path, name="run.jsonl", deliveries=300, spec=FAULTY_SPEC):
    path = str(tmp_path / name)
    summary = record_mp_scenario(spec, deliveries, path)
    return path, summary


class TestRecording:
    def test_faulty_run_records_the_whole_story(self, tmp_path):
        path, summary = _record(tmp_path)
        trace = load_trace(path)
        assert trace.scenario["kind"] == "mp"
        assert summary["drops"] > 0 and summary["duplicates"] > 0
        assert summary["crashed"] == ["p4"]
        kinds = {doc["kind"] for doc in trace.mp_events}
        assert {"delivery", "drop", "dup", "mp-crash"} <= kinds
        assert len(trace.deliveries) == summary["deliveries"]
        assert trace.end is not None

    def test_recording_is_deterministic(self, tmp_path):
        a, _ = _record(tmp_path, "a.jsonl")
        b, _ = _record(tmp_path, "b.jsonl")
        assert open(a, "rb").read() == open(b, "rb").read()


class TestReplayAgreement:
    @pytest.mark.parametrize("mode", ["schedule", "scheduler"])
    def test_faulty_trace_replays_clean(self, tmp_path, mode):
        path, summary = _record(tmp_path)
        report = replay_trace(path, mode=mode)
        assert report.ok, report.describe()
        assert report.steps_replayed == summary["deliveries"]
        assert report.samples_checked == summary["samples"]
        assert report.final_digest == summary["final_digest"]

    def test_replay_trace_dispatches_on_kind(self, tmp_path):
        """One entry point replays both flavors: the mp kind routes to
        replay_mp_trace automatically."""
        path, _ = _record(tmp_path)
        assert replay_trace(path).ok
        assert replay_mp_trace(path).ok

    def test_non_mp_trace_rejected_by_mp_replay(self, tmp_path):
        from repro.obs import record_scenario

        path = str(tmp_path / "sv.jsonl")
        record_scenario({"topology": "ring", "size": 3}, steps=10, path=path)
        from repro.obs import TraceError

        with pytest.raises(TraceError, match="not a message-passing trace"):
            replay_mp_trace(path)


class TestDivergenceNaming:
    def _perturb(self, path, tmp_path, mutate):
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        mutate(header["scenario"])
        lines[0] = json.dumps(header, sort_keys=True)
        out = str(tmp_path / "perturbed.jsonl")
        with open(out, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        return out

    def test_perturbed_fault_seed_names_first_divergent_event(self, tmp_path):
        path, _ = _record(tmp_path)

        def bump_fault_seed(scenario):
            scenario["faults"]["seed"] += 1

        report = replay_trace(self._perturb(path, tmp_path, bump_fault_seed))
        assert not report.ok
        div = report.divergence
        assert div is not None
        assert div.reason in ("delivery", "fault")
        # the divergence names a concrete delivery-clock index and shows
        # recorded vs replayed -- the debugging handle the layer promises
        assert isinstance(div.step, int)
        assert div.expected != div.actual
        assert "divergence" in report.describe()

    def test_perturbed_sched_seed_diverges_in_scheduler_mode(self, tmp_path):
        path, _ = _record(tmp_path)

        def bump_sched_seed(scenario):
            scenario["sched_seed"] += 1

        report = replay_trace(
            self._perturb(path, tmp_path, bump_sched_seed), mode="scheduler"
        )
        assert not report.ok
        assert report.divergence is not None

    def test_truncated_recording_is_caught(self, tmp_path):
        """A replay that produces *fewer* events than the recording (or a
        recording with trailing events the replay never reaches) must not
        pass silently."""
        path, _ = _record(tmp_path)
        lines = open(path).read().splitlines()
        # drop the last delivery line but keep the end document
        for i in range(len(lines) - 1, -1, -1):
            if json.loads(lines[i]).get("kind") == "delivery":
                del lines[i]
                break
        out = str(tmp_path / "truncated.jsonl")
        open(out, "w").write("\n".join(lines) + "\n")
        report = replay_trace(out)
        assert not report.ok


class TestHashSeedParity:
    def test_mp_trace_bytes_identical_across_hash_seeds(self, tmp_path):
        out0 = str(tmp_path / "hs0.jsonl")
        out42 = str(tmp_path / "hs42.jsonl")
        spec = json.dumps(FAULTY_SPEC)
        run_under_hashseed(MP_RECORD_SNIPPET, 0, [spec, "300", out0])
        run_under_hashseed(MP_RECORD_SNIPPET, 42, [spec, "300", out42])
        with open(out0, "rb") as a, open(out42, "rb") as b:
            data = a.read()
            assert data == b.read()
        assert data  # the run recorded something


class TestMPScenarioValidation:
    def test_unknown_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown mp scenario keys"):
            build_mp_scenario({"kind": "mp", "typo": 1})

    def test_unknown_topology_rejected(self):
        with pytest.raises(ScenarioError, match="unknown mp topology"):
            build_mp_scenario({"kind": "mp", "topology": "torus"})

    def test_chang_roberts_needs_unique_ids(self):
        with pytest.raises(ScenarioError, match="unique"):
            build_mp_scenario(
                {"kind": "mp", "program": "chang-roberts", "size": 3, "ids": [1, 1, 2]}
            )

    def test_ghost_crash_rejected(self):
        with pytest.raises(ScenarioError, match="unknown processors"):
            build_mp_scenario(
                {"kind": "mp", "size": 3, "faults": {"crash_at": {"p9": 1}}}
            )

    def test_ids_length_must_match_size(self):
        with pytest.raises(ScenarioError, match="one entry per processor"):
            build_mp_scenario({"kind": "mp", "size": 4, "ids": [1, 2]})
