"""Tests for the trace / replay / report-trace CLI subcommands."""

import json

import pytest

from repro.cli import main


def record(tmp_path, *extra):
    out = str(tmp_path / "run.jsonl")
    args = ["trace", "dining", "5", "--program", "both-forks",
            "--scheduler", "k-bounded", "--sched-seed", "3",
            "--steps", "60", "-o", out, *extra]
    assert main(args) == 0
    return out


class TestTrace:
    def test_records_file(self, tmp_path, capsys):
        out = record(tmp_path)
        text = capsys.readouterr().out
        assert "recorded 60 steps" in text
        assert "final digest" in text
        first = json.loads(open(out).readline())
        assert first["kind"] == "header"

    def test_crash_option(self, tmp_path):
        out = record(tmp_path, "--crash", "phil2=15")
        kinds = [json.loads(l)["kind"] for l in open(out)]
        assert "crash" in kinds

    def test_bad_crash_spec_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="PROC=STEP"):
            record(tmp_path, "--crash", "phil2")

    def test_bad_scenario_rejected(self, tmp_path):
        out = str(tmp_path / "run.jsonl")
        with pytest.raises(SystemExit, match="unknown processor"):
            main(["trace", "ring", "4", "--crash", "nope=3", "-o", out])


class TestReplay:
    def test_round_trip_ok(self, tmp_path, capsys):
        out = record(tmp_path, "--crash", "phil2=15")
        capsys.readouterr()
        assert main(["replay", out]) == 0
        assert "replay ok" in capsys.readouterr().out
        assert main(["replay", out, "--mode", "scheduler"]) == 0

    def test_divergence_exits_nonzero(self, tmp_path, capsys):
        out = record(tmp_path)
        capsys.readouterr()
        lines = []
        for raw in open(out):
            doc = json.loads(raw)
            if doc["kind"] == "end":
                doc["digest"] = "f" * 16
            lines.append(json.dumps(doc, sort_keys=True))
        bad = str(tmp_path / "bad.jsonl")
        open(bad, "w").write("\n".join(lines) + "\n")
        assert main(["replay", bad]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_missing_file_is_systemexit(self):
        with pytest.raises(SystemExit):
            main(["replay", "/nonexistent/trace.jsonl"])


class TestReportTrace:
    def test_report_trace(self, tmp_path, capsys):
        out = record(tmp_path, "--crash", "phil2=15")
        capsys.readouterr()
        assert main(["report", "trace", "--file", out]) == 0
        text = capsys.readouterr().out
        assert "trace report" in text
        assert "crashes: phil2@15" in text
        assert "MultiLock" in text
        assert "timeline" in text

    def test_report_trace_requires_file(self):
        with pytest.raises(SystemExit, match="--file"):
            main(["report", "trace"])
