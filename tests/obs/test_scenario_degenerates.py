"""Degenerate scenario specs must fail with ScenarioError, not leak
NetworkError/SystemError tracebacks (or worse, half-written trace files)."""

import pytest

from repro.obs import ScenarioError, build_scenario, record_scenario


class TestBuildScenarioDegenerates:
    def test_dining_table_of_one_rejected(self):
        with pytest.raises(ScenarioError, match="dining table of size 1"):
            build_scenario({"topology": "dining", "size": 1, "program": "left-first"})

    def test_empty_ring_rejected(self):
        with pytest.raises(ScenarioError, match="'ring' topology of size 0"):
            build_scenario({"topology": "ring", "size": 0})

    def test_negative_size_rejected(self):
        with pytest.raises(ScenarioError, match="size -3"):
            build_scenario({"topology": "star", "size": -3})

    def test_unknown_mark_rejected(self):
        with pytest.raises(ScenarioError, match="initial state"):
            build_scenario({"topology": "ring", "size": 3, "marks": ["p9"]})

    def test_unknown_topology_lists_choices(self):
        with pytest.raises(ScenarioError, match="dining"):
            build_scenario({"topology": "torus", "size": 3})

    def test_unknown_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario keys"):
            build_scenario({"topology": "ring", "size": 3, "sized": 4})


class TestRecordScenarioDegenerates:
    def test_bad_size_raises_before_trace_body(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with pytest.raises(ScenarioError, match="dining table of size 0"):
            record_scenario(
                {"topology": "dining", "size": 0, "program": "left-first"},
                steps=4,
                path=str(path),
            )
        # the file may exist (opened before validation) but must be empty
        assert not path.exists() or path.read_text() == ""

    def test_good_spec_still_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        summary = record_scenario(
            {"topology": "ring", "size": 3}, steps=3, path=str(path)
        )
        assert summary["steps"] == 3
        assert path.exists() and path.read_text().strip()
