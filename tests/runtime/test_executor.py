"""Unit tests for the step-level executor."""

import pytest

from repro.core import InstructionSet, System
from repro.exceptions import ExecutionError
from repro.runtime import (
    Executor,
    FunctionalProgram,
    Halt,
    IdleProgram,
    Internal,
    Lock,
    MultiLock,
    Peek,
    Post,
    Read,
    RoundRobinScheduler,
    Unlock,
    Write,
)
from repro.topologies import figure1_network


def constant_program(action):
    return FunctionalProgram(
        initial=lambda s0: ("s", s0),
        action=lambda st: action,
        step=lambda st, a, r: ("done", r),
    )


def sys_with(iset):
    return System(figure1_network(), {"v": 42}, iset)


class TestInstructionEnforcement:
    def test_peek_illegal_in_s(self):
        ex = Executor(sys_with(InstructionSet.S), constant_program(Peek("n")),
                      RoundRobinScheduler(("p", "q")))
        with pytest.raises(ExecutionError, match="illegal"):
            ex.step()

    def test_read_illegal_in_q(self):
        ex = Executor(sys_with(InstructionSet.Q), constant_program(Read("n")),
                      RoundRobinScheduler(("p", "q")))
        with pytest.raises(ExecutionError, match="illegal"):
            ex.step()

    def test_lock_illegal_in_s(self):
        ex = Executor(sys_with(InstructionSet.S), constant_program(Lock("n")),
                      RoundRobinScheduler(("p", "q")))
        with pytest.raises(ExecutionError):
            ex.step()

    def test_multilock_illegal_in_l(self):
        ex = Executor(sys_with(InstructionSet.L), constant_program(MultiLock(("n",))),
                      RoundRobinScheduler(("p", "q")))
        with pytest.raises(ExecutionError):
            ex.step()


class TestSemantics:
    def test_read_returns_initial_state(self):
        ex = Executor(sys_with(InstructionSet.S), constant_program(Read("n")),
                      RoundRobinScheduler(("p",)))
        record = ex.step()
        assert record.result == 42

    def test_write_then_read(self):
        prog = FunctionalProgram(
            initial=lambda s0: "w",
            action=lambda st: Write("n", "X") if st == "w" else Read("n"),
            step=lambda st, a, r: ("got", r) if isinstance(a, Read) else "r",
        )
        ex = Executor(sys_with(InstructionSet.S), prog, RoundRobinScheduler(("p",)))
        ex.run(2)
        assert ex.local["p"] == ("got", "X")

    def test_lock_race_has_one_winner(self):
        prog = FunctionalProgram(
            initial=lambda s0: "try",
            action=lambda st: Lock("n") if st == "try" else Internal("idle"),
            step=lambda st, a, r: ("won" if r else "lost") if isinstance(a, Lock) else st,
        )
        ex = Executor(sys_with(InstructionSet.L), prog, RoundRobinScheduler(("p", "q")))
        ex.run(2)
        outcomes = sorted(ex.local.values())
        assert outcomes == ["lost", "won"]

    def test_multilock_all_or_nothing(self):
        import repro.core as core

        net = core.Network(("a", "b"), {"p1": {"a": "v", "b": "w"}, "p2": {"a": "w", "b": "v"}})
        system = core.System(net, None, core.InstructionSet.L2)
        prog = FunctionalProgram(
            initial=lambda s0: "try",
            action=lambda st: MultiLock(("a", "b")) if st == "try" else Internal("i"),
            step=lambda st, a, r: ("ml", r) if isinstance(a, MultiLock) else st,
        )
        ex = Executor(system, prog, RoundRobinScheduler(("p1", "p2")))
        ex.run(2)
        assert ex.local["p1"] == ("ml", True)
        assert ex.local["p2"] == ("ml", False)  # both variables taken

    def test_post_and_peek(self):
        prog = FunctionalProgram(
            initial=lambda s0: "post",
            action=lambda st: Post("n", "sub") if st == "post" else Peek("n"),
            step=lambda st, a, r: ("peeked", r) if isinstance(a, Peek) else "peek",
        )
        ex = Executor(sys_with(InstructionSet.Q), prog, RoundRobinScheduler(("p", "q")))
        ex.run(4)
        base, values = ex.local["p"][1]
        assert base == 42
        assert values == ("sub", "sub")


class TestHalting:
    def test_halted_steps_are_noops(self):
        prog = FunctionalProgram(
            initial=lambda s0: "h",
            action=lambda st: Halt(),
            step=lambda st, a, r: st,
        )
        ex = Executor(sys_with(InstructionSet.S), prog, RoundRobinScheduler(("p", "q")))
        ex.run(6)
        assert all(ex.halted.values())
        assert ex.step_count == 6  # scheduling continues


class TestObservation:
    def test_configuration_roundtrip(self):
        ex = Executor(sys_with(InstructionSet.S), IdleProgram(), RoundRobinScheduler(("p", "q")))
        c0 = ex.configuration()
        ex.run(4)
        assert ex.configuration() == c0  # idle program never changes anything

    def test_node_state_for_both_kinds(self):
        ex = Executor(sys_with(InstructionSet.S), IdleProgram(), RoundRobinScheduler(("p", "q")))
        assert ex.node_state("p") == ("idle", 0)
        assert ex.node_state("v")[1] == 42

    def test_unknown_scheduler_choice(self):
        class Bad:
            def next_processor(self, i, view):
                return "ghost"

        ex = Executor(sys_with(InstructionSet.S), IdleProgram(), Bad())
        with pytest.raises(ExecutionError, match="unknown processor"):
            ex.step()


class TestCloneAndStepAs:
    def test_clone_is_independent(self):
        prog = FunctionalProgram(
            initial=lambda s0: 0,
            action=lambda st: Write("n", st),
            step=lambda st, a, r: st + 1,
        )
        ex = Executor(sys_with(InstructionSet.S), prog, RoundRobinScheduler(("p", "q")))
        ex.run(4)
        twin = ex.clone()
        ex.run(4)
        assert twin.local != ex.local  # the original moved on alone
        assert twin.configuration() != ex.configuration()

    def test_clone_preserves_variable_state(self):
        prog = constant_program(Write("n", "X"))
        ex = Executor(sys_with(InstructionSet.S), prog, RoundRobinScheduler(("p",)))
        ex.step()
        twin = ex.clone()
        assert twin.vars["v"].read() == "X"
        twin.vars["v"].write("Y")
        assert ex.vars["v"].read() == "X"  # no sharing

    def test_clone_q_variables(self):
        prog = constant_program(Post("n", "sub"))
        ex = Executor(sys_with(InstructionSet.Q), prog, RoundRobinScheduler(("p",)))
        ex.step()
        twin = ex.clone()
        twin.vars["v"].post("q", "other")
        assert len(ex.vars["v"].subvalues) == 1
        assert len(twin.vars["v"].subvalues) == 2

    def test_step_as_bypasses_scheduler(self):
        prog = constant_program(Read("n"))
        ex = Executor(sys_with(InstructionSet.S), prog, RoundRobinScheduler(("p", "q")))
        record = ex.step_as("q")
        assert record.processor == "q"
