"""Unit tests for runtime variable semantics."""

import pytest

from repro.exceptions import ExecutionError
from repro.runtime import PlainVariable, SubvalueVariable, multiset_key


class TestPlainVariable:
    def test_read_write(self):
        v = PlainVariable("v", 0)
        assert v.read() == 0
        v.write("x")
        assert v.read() == "x"

    def test_lock_semantics(self):
        v = PlainVariable("v", 0)
        assert v.try_lock("p") is True
        assert v.try_lock("q") is False  # already set
        v.unlock("p")
        assert v.try_lock("q") is True

    def test_strict_unlock_by_other(self):
        v = PlainVariable("v", 0)
        v.try_lock("p")
        with pytest.raises(ExecutionError):
            v.unlock("q", strict=True)

    def test_lenient_unlock(self):
        v = PlainVariable("v", 0)
        v.try_lock("p")
        v.unlock("q", strict=False)  # the paper's unconditional unlock
        assert not v.locked

    def test_snapshot_includes_lock_bit(self):
        v = PlainVariable("v", 0)
        before = v.snapshot()
        v.try_lock("p")
        assert v.snapshot() != before


class TestSubvalueVariable:
    def test_initially_empty(self):
        v = SubvalueVariable("v", "base")
        assert v.peek() == ("base", ())

    def test_post_creates_subvalue(self):
        v = SubvalueVariable("v", 0)
        v.post("p", "a")
        v.post("q", "b")
        assert v.peek() == (0, ("'a'", "'b'")) or v.peek()[1] == ("a", "b")

    def test_post_overwrites_own_subvalue(self):
        v = SubvalueVariable("v", 0)
        v.post("p", "a")
        v.post("p", "b")
        base, values = v.peek()
        assert values == ("b",)

    def test_anonymity_of_snapshot(self):
        """Equal multisets from different posters give equal snapshots."""
        v1 = SubvalueVariable("v1", 0)
        v2 = SubvalueVariable("v2", 0)
        v1.post("p", "x")
        v2.post("q", "x")
        assert v1.snapshot() == v2.snapshot()

    def test_multiset_key_order_independent(self):
        assert multiset_key(["b", "a"]) == multiset_key(["a", "b"])
        assert multiset_key(["a", "a"]) != multiset_key(["a"])
