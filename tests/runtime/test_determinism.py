"""Executor determinism and schedule-replay properties."""

from hypothesis import given, settings

from repro.core import InstructionSet
from repro.runtime import (
    Executor,
    RandomProgramL,
    RandomProgramQ,
    RandomProgramS,
    ReplayScheduler,
    RoundRobinScheduler,
)

from ..strategies import systems

SETTINGS = settings(max_examples=20, deadline=None)


def run_twice(system, program_cls, seed):
    results = []
    for _ in range(2):
        program = program_cls(system.names, seed=seed)
        executor = Executor(system, program, RoundRobinScheduler(system.processors))
        executor.run(50)
        results.append(executor.configuration())
    return results


@SETTINGS
@given(systems(instruction_set=InstructionSet.Q))
def test_q_runs_are_reproducible(system):
    a, b = run_twice(system, RandomProgramQ, seed=3)
    assert a == b


@SETTINGS
@given(systems(instruction_set=InstructionSet.S))
def test_s_runs_are_reproducible(system):
    a, b = run_twice(system, RandomProgramS, seed=5)
    assert a == b


@SETTINGS
@given(systems(instruction_set=InstructionSet.L))
def test_l_runs_are_reproducible(system):
    a, b = run_twice(system, RandomProgramL, seed=7)
    assert a == b


@SETTINGS
@given(systems(instruction_set=InstructionSet.Q))
def test_replay_prefix_matches_live_run(system):
    """Replaying the exact schedule of a live run reproduces it."""
    program = RandomProgramQ(system.names, seed=1)
    live = Executor(system, program, RoundRobinScheduler(system.processors))
    schedule = []
    for _ in range(40):
        record = live.step()
        schedule.append(record.processor)
    replay = Executor(
        system,
        RandomProgramQ(system.names, seed=1),
        ReplayScheduler(schedule, RoundRobinScheduler(system.processors)),
    )
    replay.run(len(schedule))
    assert replay.configuration() == live.configuration()
