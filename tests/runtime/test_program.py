"""Unit tests for the program abstractions."""

from repro.runtime import (
    FunctionalProgram,
    IdleProgram,
    Internal,
    RandomProgramL,
    RandomProgramQ,
    RandomProgramS,
    check_anonymous,
)


class TestIdleProgram:
    def test_never_changes_state(self):
        prog = IdleProgram()
        s = prog.initial_state(7)
        assert prog.transition(s, prog.next_action(s), None) == s

    def test_not_selected(self):
        prog = IdleProgram()
        assert not prog.is_selected(prog.initial_state(0))


class TestFunctionalProgram:
    def test_wiring(self):
        prog = FunctionalProgram(
            initial=lambda s0: ("n", 0),
            action=lambda st: Internal("tick"),
            step=lambda st, a, r: ("n", st[1] + 1),
            selected=lambda st: st[1] >= 3,
        )
        s = prog.initial_state(0)
        for _ in range(3):
            assert not prog.is_selected(s)
            s = prog.transition(s, prog.next_action(s), None)
        assert prog.is_selected(s)


class TestRandomPrograms:
    def test_deterministic_despite_randomness(self):
        for cls in (RandomProgramQ, RandomProgramS, RandomProgramL):
            prog = cls(("a", "b"), seed=3)
            assert check_anonymous(prog, [0, 1, "x"])

    def test_same_seed_same_behavior(self):
        a = RandomProgramQ(("n",), seed=5)
        b = RandomProgramQ(("n",), seed=5)
        s = a.initial_state(0)
        assert a.next_action(s) == b.next_action(s)

    def test_different_states_can_differ(self):
        prog = RandomProgramQ(("a", "b"), seed=1)
        s0 = prog.initial_state(0)
        s1 = prog.initial_state(1)
        # Not required to differ, but the states themselves must.
        assert s0 != s1

    def test_bounded_state_space(self):
        prog = RandomProgramS(("n",), seed=2, period=4)
        s = prog.initial_state(0)
        seen = set()
        for _ in range(100):
            seen.add(s)
            s = prog.transition(s, prog.next_action(s), "const")
        assert len(seen) <= 4 * 2 + 2  # counter x few digests
