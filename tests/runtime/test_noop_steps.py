"""Regression tests for synthetic-Halt (no-op) step semantics.

Scheduled slots wasted on an already-halted processor used to be
recorded as real ``Halt`` actions, inflating census per-action counts,
history lanes and timelines.  They are now marked ``noop=True`` and
excluded from every aggregate except the raw record list.
"""

from types import SimpleNamespace

from repro.core import InstructionSet, Network, System
from repro.runtime import (
    FunctionalProgram,
    Halt,
    Internal,
    RecordingExecutor,
    RoundRobinScheduler,
    census,
    render_timeline,
)


def halting_system():
    """Two processors; p1 halts immediately, p2 idles forever."""
    net = Network(("n",), {"p1": {"n": "v"}, "p2": {"n": "v"}})
    system = System(net, {"p1": 1}, InstructionSet.S)
    prog = FunctionalProgram(
        initial=lambda s0: "halt" if s0 == 1 else "idle",
        action=lambda st: Halt() if st == "halt" else Internal("i"),
        step=lambda st, a, r: st,
    )
    return system, prog


def run_recorded(steps=10):
    system, prog = halting_system()
    ex = RecordingExecutor(system, prog, RoundRobinScheduler(("p1", "p2")))
    ex.run(steps)
    return ex


class TestNoopSteps:
    def test_records_keep_every_scheduled_slot(self):
        ex = run_recorded(10)
        assert len(ex.records) == 10

    def test_noop_flag_set_only_after_halt(self):
        ex = run_recorded(10)
        p1_records = [r for r in ex.records if r.processor == "p1"]
        assert p1_records[0].noop is False  # the real Halt step
        assert all(r.noop for r in p1_records[1:])  # wasted slots

    def test_census_excludes_noops(self):
        ex = run_recorded(10)
        c = census(ex)
        assert c.steps == 10
        assert c.noop_steps == 4  # p1 scheduled 5 times; 1 real Halt
        assert c.per_action_type.get("Halt", 0) == 1
        assert c.per_processor["p1"] == 1
        assert c.per_processor["p2"] == 5
        assert sum(c.per_processor.values()) + c.noop_steps == c.steps

    def test_histories_exclude_noops(self):
        ex = run_recorded(10)
        # p1: initial state + one real (Halt) step
        assert len(ex.histories["p1"]) == 2
        # p2: initial state + five real steps
        assert len(ex.histories["p2"]) == 6

    def test_timeline_lanes_exclude_noops(self):
        ex = run_recorded(10)
        out = render_timeline(ex, lambda st: "H" if st == "halt" else ".")
        lanes = dict(line.split() for line in out.splitlines())
        assert lanes["p1"] == "H"
        assert lanes["p2"] == "....."

    def test_clone_preserves_recording_via_subclass_hook(self):
        ex = run_recorded(6)
        twin = ex.clone()
        assert twin.records == ex.records
        assert twin.histories == ex.histories
        # the twin keeps recording independently
        twin.run(2)
        assert len(twin.records) == 8
        assert len(ex.records) == 6


class TestRenderTimelineEmpty:
    def test_zero_processors_render_empty_string(self):
        fake = SimpleNamespace(
            system=SimpleNamespace(processors=()), histories={}
        )
        assert render_timeline(fake, lambda st: "x") == ""
