"""Unit tests for cycle detection and infinitely-often checks."""

import pytest

from repro.core import InstructionSet, System, similarity_labeling
from repro.exceptions import ExecutionError
from repro.runtime import (
    ClassRoundRobinScheduler,
    Executor,
    IdleProgram,
    RandomFairScheduler,
    RandomProgramQ,
    RoundRobinScheduler,
    lockstep_holds,
    run_until_cycle,
    states_equal_infinitely_often,
)
from repro.topologies import figure1_system, ring


class TestRunUntilCycle:
    def test_idle_program_cycles_immediately(self, fig1_q):
        ex = Executor(fig1_q, IdleProgram(), RoundRobinScheduler(fig1_q.processors))
        info = run_until_cycle(ex)
        assert info.cycle_length == 1
        assert info.prefix_length == 0

    def test_random_program_reaches_cycle(self, fig1_q):
        ex = Executor(fig1_q, RandomProgramQ(fig1_q.names, seed=0), RoundRobinScheduler(fig1_q.processors))
        info = run_until_cycle(ex)
        assert info.cycle_length >= 1
        assert len(info.cycle) == info.cycle_length

    def test_max_samples_guard(self, fig1_q):
        ex = Executor(fig1_q, RandomProgramQ(fig1_q.names, seed=0), RoundRobinScheduler(fig1_q.processors))
        with pytest.raises(ExecutionError, match="no configuration cycle"):
            run_until_cycle(ex, max_samples=1)


class TestPeriodicityGate:
    """Regression: stateful schedulers used to get bogus lassos.

    A repeated configuration under a seeded-random scheduler does not
    pin down the future (the RNG state lives outside the configuration),
    so ``run_until_cycle`` used to return a "cycle" the real execution
    then left.  Non-periodic schedulers are now rejected unless the
    caller explicitly opts in with ``assume_periodic=True``.
    """

    def test_nonperiodic_scheduler_rejected(self, fig1_q):
        from repro.runtime import KBoundedFairScheduler

        for scheduler in (
            RandomFairScheduler(fig1_q.processors, seed=3),
            # the deadline scheduler: its staggered deadlines live outside
            # the configuration, the original silent-wrong-lasso case
            KBoundedFairScheduler(fig1_q.processors, k=4, seed=3),
        ):
            ex = Executor(
                fig1_q, RandomProgramQ(fig1_q.names, seed=0), scheduler
            )
            with pytest.raises(ExecutionError, match="periodic"):
                run_until_cycle(ex)

    def test_assume_periodic_overrides(self, fig1_q):
        ex = Executor(
            fig1_q,
            RandomProgramQ(fig1_q.names, seed=0),
            RandomFairScheduler(fig1_q.processors, seed=3),
        )
        info = run_until_cycle(ex, assume_periodic=True)
        assert info.cycle_length >= 1

    def test_claimed_lasso_can_diverge_for_stateful_scheduler(self):
        """The override exists because the answer may genuinely be wrong:
        replay the claimed lasso and watch the real run leave it."""
        system = System(ring(3), {"p0": 1}, InstructionSet.Q)
        for seed in range(12):
            ex = Executor(
                system,
                RandomProgramQ(system.names, seed=seed),
                RandomFairScheduler(system.processors, seed=seed),
            )
            info = run_until_cycle(ex, assume_periodic=True, max_samples=500)
            # Keep running from the moment the "cycle" was detected: a
            # truly periodic execution only revisits lasso configurations.
            lasso = set(info.configurations)
            diverged = False
            for _ in range(3 * info.cycle_length + 3):
                ex.run(info.stride)
                if ex.configuration() not in lasso:
                    diverged = True
                    break
            if diverged:
                return  # found a seed whose claimed lasso is a lie
        pytest.fail("no divergent lasso found; tighten the regression")


class TestInfinitelyOften:
    def test_similar_pair_equal_io(self, fig1_q):
        factory = lambda: Executor(
            fig1_q, RandomProgramQ(fig1_q.names, seed=3), RoundRobinScheduler(fig1_q.processors)
        )
        assert states_equal_infinitely_often(factory, ["p", "q"])

    def test_marked_pair_not_equal(self):
        system = System(ring(2), {"p0": 1}, InstructionSet.Q)
        # p0 marked: with a program that keeps the mark in its state, the
        # two processors never coincide.
        factory = lambda: Executor(
            system, RandomProgramQ(system.names, seed=1), RoundRobinScheduler(system.processors)
        )
        assert not states_equal_infinitely_often(factory, ["p0", "p1"])

    @pytest.mark.parametrize(
        "system_args, nodes, seed, expected",
        [
            ((3, None), ["p0", "p2"], 0, True),
            ((2, {"p0": 1}), ["p0", "p1"], 1, False),
        ],
    )
    def test_shared_scheduler_factory_matches_fresh(
        self, system_args, nodes, seed, expected
    ):
        """Regression: the probe re-run must replay the SAME schedule.

        A factory commonly closes over one seeded scheduler instance; the
        first run advances its RNG, so the probe used to replay a
        *different* schedule than the recorded cycle and the verdict
        flipped (both directions, depending on the seed).  Both runs now
        reset the scheduler first.
        """
        n, marks = system_args
        system = System(ring(n), marks, InstructionSet.Q)

        def fresh():
            return Executor(
                system,
                RandomProgramQ(system.names, seed=seed),
                RandomFairScheduler(system.processors, seed=seed),
            )

        shared_scheduler = RandomFairScheduler(system.processors, seed=seed)

        def shared():
            return Executor(
                system, RandomProgramQ(system.names, seed=seed), shared_scheduler
            )

        # RandomFairScheduler is not periodic, so cycle detection needs
        # the explicit override (both runs replay the same reset schedule,
        # which is what this regression pins down).
        assert (
            states_equal_infinitely_often(fresh, nodes, assume_periodic=True)
            is expected
        )
        assert (
            states_equal_infinitely_often(shared, nodes, assume_periodic=True)
            is expected
        )
        # And the shared-scheduler verdict is stable across repeated calls.
        assert (
            states_equal_infinitely_often(shared, nodes, assume_periodic=True)
            is expected
        )


class TestLockstep:
    def test_theorem4_lockstep_on_ring(self):
        system = System(ring(6), None, InstructionSet.Q)
        theta = similarity_labeling(system)
        classes = [sorted(b, key=repr) for b in theta.blocks]
        ex = Executor(system, RandomProgramQ(system.names, seed=7),
                      ClassRoundRobinScheduler(system.processors, theta))
        assert lockstep_holds(ex, classes, rounds=40)

    def test_lockstep_fails_for_wrong_classes(self):
        system = System(ring(4), {"p0": 1}, InstructionSet.Q)
        bogus_classes = [["p0", "p1"]]  # differently-stated pair
        ex = Executor(system, RandomProgramQ(system.names, seed=2),
                      RoundRobinScheduler(system.processors))
        assert not lockstep_holds(ex, bogus_classes, rounds=10)
