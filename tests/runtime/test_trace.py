"""Unit tests for cycle detection and infinitely-often checks."""

import pytest

from repro.core import InstructionSet, System, similarity_labeling
from repro.exceptions import ExecutionError
from repro.runtime import (
    ClassRoundRobinScheduler,
    Executor,
    IdleProgram,
    RandomProgramQ,
    RoundRobinScheduler,
    lockstep_holds,
    run_until_cycle,
    states_equal_infinitely_often,
)
from repro.topologies import figure1_system, ring


class TestRunUntilCycle:
    def test_idle_program_cycles_immediately(self, fig1_q):
        ex = Executor(fig1_q, IdleProgram(), RoundRobinScheduler(fig1_q.processors))
        info = run_until_cycle(ex)
        assert info.cycle_length == 1
        assert info.prefix_length == 0

    def test_random_program_reaches_cycle(self, fig1_q):
        ex = Executor(fig1_q, RandomProgramQ(fig1_q.names, seed=0), RoundRobinScheduler(fig1_q.processors))
        info = run_until_cycle(ex)
        assert info.cycle_length >= 1
        assert len(info.cycle) == info.cycle_length

    def test_max_samples_guard(self, fig1_q):
        ex = Executor(fig1_q, RandomProgramQ(fig1_q.names, seed=0), RoundRobinScheduler(fig1_q.processors))
        with pytest.raises(ExecutionError, match="no configuration cycle"):
            run_until_cycle(ex, max_samples=1)


class TestInfinitelyOften:
    def test_similar_pair_equal_io(self, fig1_q):
        factory = lambda: Executor(
            fig1_q, RandomProgramQ(fig1_q.names, seed=3), RoundRobinScheduler(fig1_q.processors)
        )
        assert states_equal_infinitely_often(factory, ["p", "q"])

    def test_marked_pair_not_equal(self):
        system = System(ring(2), {"p0": 1}, InstructionSet.Q)
        # p0 marked: with a program that keeps the mark in its state, the
        # two processors never coincide.
        factory = lambda: Executor(
            system, RandomProgramQ(system.names, seed=1), RoundRobinScheduler(system.processors)
        )
        assert not states_equal_infinitely_often(factory, ["p0", "p1"])


class TestLockstep:
    def test_theorem4_lockstep_on_ring(self):
        system = System(ring(6), None, InstructionSet.Q)
        theta = similarity_labeling(system)
        classes = [sorted(b, key=repr) for b in theta.blocks]
        ex = Executor(system, RandomProgramQ(system.names, seed=7),
                      ClassRoundRobinScheduler(system.processors, theta))
        assert lockstep_holds(ex, classes, rounds=40)

    def test_lockstep_fails_for_wrong_classes(self):
        system = System(ring(4), {"p0": 1}, InstructionSet.Q)
        bogus_classes = [["p0", "p1"]]  # differently-stated pair
        ex = Executor(system, RandomProgramQ(system.names, seed=2),
                      RoundRobinScheduler(system.processors))
        assert not lockstep_holds(ex, bogus_classes, rounds=10)
