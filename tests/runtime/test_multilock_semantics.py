"""Regression tests for the MultiLock acquisition-semantics fixes.

The old implementation iterated targets in *set* order (hash-order
dependent), silently returned ``False`` when the acquiring processor
already held one of the targets, and discarded ``try_lock`` results.
"""

import pytest

from repro.core import InstructionSet, Network, System
from repro.exceptions import ExecutionError
from repro.runtime import (
    Executor,
    FunctionalProgram,
    Internal,
    Lock,
    MultiLock,
    RoundRobinScheduler,
)


def two_var_system():
    """One processor ``p1`` naming two variables ``v`` (a) and ``w`` (b)."""
    net = Network(("a", "b"), {"p1": {"a": "v", "b": "w"}})
    return System(net, None, InstructionSet.L2)


def lock_then_multilock():
    """Lock ``a`` first, then MultiLock both ``a`` and ``b``."""
    return FunctionalProgram(
        initial=lambda s0: "lock-a",
        action=lambda st: (
            Lock("a") if st == "lock-a"
            else MultiLock(("a", "b")) if st == "multi"
            else Internal("i")
        ),
        step=lambda st, a, r: (
            "multi" if st == "lock-a"
            else ("granted" if r else "denied") if st == "multi"
            else st
        ),
    )


class TestSelfHeld:
    def test_strict_self_held_raises(self):
        ex = Executor(
            two_var_system(), lock_then_multilock(),
            RoundRobinScheduler(("p1",)), strict=True,
        )
        ex.step()  # Lock("a") succeeds
        with pytest.raises(ExecutionError, match="already holds"):
            ex.step()  # MultiLock including the self-held "a"

    def test_non_strict_self_held_is_reentrant_success(self):
        ex = Executor(
            two_var_system(), lock_then_multilock(),
            RoundRobinScheduler(("p1",)), strict=False,
        )
        ex.run(2)
        assert ex.local["p1"] == "granted"
        # both variables end up held by p1
        assert ex.vars["v"].lock_owner == "p1"
        assert ex.vars["w"].lock_owner == "p1"


class TestAllOrNothing:
    def test_other_held_acquires_nothing(self):
        # p1 and p2 share both variables under swapped names; p1 locks one
        # plainly, then p2's MultiLock must fail without touching either.
        net = Network(
            ("a", "b"),
            {"p1": {"a": "v", "b": "w"}, "p2": {"a": "w", "b": "v"}},
        )
        system = System(net, {"p1": 1}, InstructionSet.L2)
        prog = FunctionalProgram(
            initial=lambda s0: "start" if s0 == 1 else "multi",
            action=lambda st: (
                Lock("a") if st == "start" else MultiLock(("a", "b"))
            ),
            step=lambda st, a, r: (
                "hold" if st == "start"
                else ("granted" if r else "denied") if st == "multi"
                else st
            ),
        )
        ex = Executor(system, prog, RoundRobinScheduler(("p1", "p2")))
        ex.step()  # p1 locks v
        ex.step()  # p2 multilocks {w, v}: v is p1's -> False, w untouched
        assert ex.local["p2"] == "denied"
        assert ex.vars["v"].lock_owner == "p1"
        assert not ex.vars["w"].locked

    def test_duplicate_names_same_variable_ok(self):
        # Two names resolving to one variable must not deadlock on itself.
        net = Network(("a", "b"), {"p1": {"a": "v", "b": "v"}})
        system = System(net, None, InstructionSet.L2)
        prog = FunctionalProgram(
            initial=lambda s0: "try",
            action=lambda st: MultiLock(("a", "b")) if st == "try" else Internal("i"),
            step=lambda st, a, r: ("granted" if r else "denied") if st == "try" else st,
        )
        ex = Executor(system, prog, RoundRobinScheduler(("p1",)))
        ex.step()
        assert ex.local["p1"] == "granted"
        assert ex.vars["v"].lock_owner == "p1"


class TestDeterministicOrder:
    def test_targets_acquired_in_sorted_node_order(self):
        # With many variables, acquisition must touch them in sorted node
        # order regardless of set-iteration order.  Observable via the
        # lock acquisition sequence on instrumented variables.
        names = tuple("abcdefgh")
        net = Network(
            names, {"p1": {n: f"v{i}" for i, n in enumerate(names)}}
        )
        system = System(net, None, InstructionSet.L2)
        prog = FunctionalProgram(
            initial=lambda s0: "try",
            action=lambda st: MultiLock(names) if st == "try" else Internal("i"),
            step=lambda st, a, r: "done" if st == "try" else st,
        )
        ex = Executor(system, prog, RoundRobinScheduler(("p1",)))
        order = []

        class SpyVariable(type(next(iter(ex.vars.values())))):
            __slots__ = ()

            def try_lock(self, owner):
                order.append(self.node)
                return super().try_lock(owner)

        ex.vars = {
            node: SpyVariable(node, var.value) for node, var in ex.vars.items()
        }
        ex.step()
        assert order == sorted(ex.vars, key=repr)
