"""Property tests: k-bounded fairness survives composition.

:class:`KBoundedFairScheduler` promises that every window of ``k``
consecutive steps contains every processor.  These properties check the
promise holds not just for the bare scheduler but through the two
compositions the runtime actually uses:

* wrapped in a :class:`CrashScheduler` — the wrapper substitutes crashed
  picks with survivor picks but never removes a survivor pick, so every
  k-window must still contain every *survivor*;
* as a :class:`ReplayScheduler` fallback — the handoff rebases the
  staggered deadlines, so the post-prefix suffix must be k-bounded on
  its own (this was exactly the satellite-2 bug surface: a fallback fed
  local indices had its deadline clock skewed by the prefix length).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.faults import CrashScheduler
from repro.runtime.scheduler import (
    KBoundedFairScheduler,
    ReplayScheduler,
    is_k_bounded_prefix,
)
from tests.strategies import scheduler_arenas


def take(scheduler, length, start=0):
    return [scheduler.next_processor(i, None) for i in range(start, start + length)]


class TestBareKBounded:
    @given(scheduler_arenas(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_every_window_contains_every_processor(self, arena, windows):
        procs, k, seed = arena
        sched = KBoundedFairScheduler(procs, k=k, seed=seed)
        prefix = take(sched, windows * k)
        assert is_k_bounded_prefix(prefix, procs, k)

    @given(scheduler_arenas())
    @settings(max_examples=30)
    def test_reset_reproduces_the_schedule(self, arena):
        procs, k, seed = arena
        sched = KBoundedFairScheduler(procs, k=k, seed=seed)
        first = take(sched, 3 * k)
        sched.reset()
        assert take(sched, 3 * k) == first


class TestCrashWrapped:
    @given(scheduler_arenas(min_processors=2), st.data())
    @settings(max_examples=60)
    def test_survivor_set_stays_k_bounded(self, arena, data):
        procs, k, seed = arena
        crashed = data.draw(
            st.sets(
                st.sampled_from(procs),
                min_size=1,
                max_size=len(procs) - 1,
            ),
            label="crashed",
        )
        length = 4 * k
        crash_at = {
            p: data.draw(
                st.integers(min_value=0, max_value=length // 2), label=f"crash {p}"
            )
            for p in sorted(crashed)
        }
        sched = CrashScheduler(
            KBoundedFairScheduler(procs, k=k, seed=seed), crash_at, procs
        )
        prefix = take(sched, length)
        survivors = [p for p in procs if p not in crashed]
        # survivor picks pass through the wrapper untouched, so the whole
        # run (not just the post-crash suffix) is k-bounded over survivors
        assert is_k_bounded_prefix(prefix, survivors, k)
        # and no crashed processor appears at or after its crash step
        for i, pick in enumerate(prefix):
            assert crash_at.get(pick, length + 1) > i


class TestReplayFallback:
    @given(scheduler_arenas(), st.data())
    @settings(max_examples=60)
    def test_post_prefix_suffix_is_k_bounded(self, arena, data):
        procs, k, seed = arena
        prefix = data.draw(
            st.lists(st.sampled_from(procs), min_size=0, max_size=2 * k),
            label="prefix",
        )
        sched = ReplayScheduler(
            prefix, then=KBoundedFairScheduler(procs, k=k, seed=seed)
        )
        picks = take(sched, len(prefix) + 3 * k)
        assert picks[: len(prefix)] == prefix
        assert is_k_bounded_prefix(picks[len(prefix) :], procs, k)

    @given(scheduler_arenas(min_processors=2), st.data())
    @settings(max_examples=40)
    def test_crash_wrapped_fallback_composes(self, arena, data):
        """The full stack the obs replay layer builds: replay prefix over
        a crash-wrapped k-bounded scheduler, survivors k-bounded after
        both the handoff and every crash."""
        procs, k, seed = arena
        crashed = data.draw(
            st.sets(st.sampled_from(procs), min_size=1, max_size=len(procs) - 1),
            label="crashed",
        )
        survivors = [p for p in procs if p not in crashed]
        prefix = data.draw(
            st.lists(st.sampled_from(survivors), min_size=0, max_size=k),
            label="prefix",
        )
        crash_at = {p: 0 for p in sorted(crashed)}
        inner = CrashScheduler(
            KBoundedFairScheduler(procs, k=k, seed=seed), crash_at, procs
        )
        sched = ReplayScheduler(prefix, then=inner)
        picks = take(sched, len(prefix) + 3 * k)
        assert is_k_bounded_prefix(picks[len(prefix) :], survivors, k)
