"""Tests for execution recording and timelines."""

from repro.baselines import LeftFirstDiningProgram
from repro.core import InstructionSet
from repro.runtime import (
    RecordingExecutor,
    RoundRobinScheduler,
    census,
    render_activity,
    render_timeline,
)
from repro.topologies import dining_system, figure4_system, figure5_system


def record_dining(system, steps):
    executor = RecordingExecutor(
        system,
        LeftFirstDiningProgram(),
        RoundRobinScheduler(system.processors),
    )
    executor.run(steps)
    return executor


class TestRecording:
    def test_records_every_step(self):
        ex = record_dining(figure5_system(), 120)
        assert len(ex.records) == 120
        assert len(ex.schedule_so_far()) == 120

    def test_histories_grow_per_own_step(self):
        ex = record_dining(figure5_system(), 120)
        total = sum(len(h) - 1 for h in ex.histories.values())
        assert total == 120

    def test_census(self):
        ex = record_dining(figure5_system(), 120)
        c = census(ex)
        assert c.steps == 120
        assert sum(c.per_processor.values()) == 120
        assert "Lock" in c.per_action_type


class TestTimelines:
    def test_dp6_shows_eating(self):
        ex = record_dining(figure5_system(), 600)
        art = render_activity(ex, LeftFirstDiningProgram.is_eating)
        assert "#" in art  # somebody ate
        assert art.count("\n") == 5  # six lanes

    def test_dp5_shows_no_eating(self):
        ex = record_dining(figure4_system(), 600)
        art = render_activity(ex, LeftFirstDiningProgram.is_eating)
        assert "#" not in art  # deadlock: nobody ever eats

    def test_width_truncation(self):
        ex = record_dining(figure5_system(), 300)
        art = render_timeline(ex, lambda st: "x", width=10)
        for lane in art.splitlines():
            assert len(lane.split()[-1]) <= 10
