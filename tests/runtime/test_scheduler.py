"""Unit tests for schedulers and schedule-prefix validation."""

import pytest

from repro.exceptions import ScheduleError
from repro.core import Labeling
from repro.runtime import (
    ClassRoundRobinScheduler,
    KBoundedFairScheduler,
    RandomFairScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    StarvationScheduler,
    is_fair_prefix,
    is_k_bounded_prefix,
)

PROCS = ("a", "b", "c")


def take(scheduler, n):
    return [scheduler.next_processor(i, None) for i in range(n)]


class TestRoundRobin:
    def test_cycles(self):
        assert take(RoundRobinScheduler(PROCS), 7) == ["a", "b", "c", "a", "b", "c", "a"]

    def test_empty_rejected(self):
        with pytest.raises(ScheduleError):
            RoundRobinScheduler(())


class TestClassRoundRobin:
    def test_empty_rejected(self):
        """Regression: an empty processor list used to build a scheduler
        whose first ``next_processor`` call died with ZeroDivisionError
        (``step_index %% 0``); the constructor now refuses it up front."""
        with pytest.raises(ScheduleError):
            ClassRoundRobinScheduler([], Labeling({"a": 1}))

    def test_classes_run_back_to_back(self):
        lab = Labeling({"a": 1, "b": 2, "c": 1})
        sched = ClassRoundRobinScheduler(PROCS, lab)
        round_ = take(sched, 3)
        # a and c (class 1) adjacent, then b.
        assert round_.index("a") + 1 == round_.index("c") or round_.index("c") + 1 == round_.index("a")


class TestKBounded:
    def test_every_window_contains_everyone(self):
        sched = KBoundedFairScheduler(PROCS, k=6, seed=1)
        prefix = take(sched, 120)
        assert is_k_bounded_prefix(prefix, PROCS, 6)

    def test_k_smaller_than_n_rejected(self):
        with pytest.raises(ScheduleError):
            KBoundedFairScheduler(PROCS, k=2)

    def test_reset_reproduces(self):
        sched = KBoundedFairScheduler(PROCS, seed=4)
        first = take(sched, 20)
        sched.reset()
        assert take(sched, 20) == first

    @pytest.mark.parametrize("n", [4, 5, 6, 8])
    @pytest.mark.parametrize("slack", [0, 1, 2])
    def test_k_close_to_n_property(self, n, slack):
        """Regression: with several processors overdue at once the old
        scheduler forced only one per step, so for k close to n a window
        of k steps could miss a processor entirely.  Staggered initial
        deadlines keep at most one processor due per step, which forcing
        earliest-deadline-first always satisfies."""
        procs = tuple(f"p{i}" for i in range(n))
        k = n + slack
        for seed in range(5):
            sched = KBoundedFairScheduler(procs, k=k, seed=seed)
            prefix = take(sched, 40 * n)
            assert is_k_bounded_prefix(prefix, procs, k), (n, k, seed)

    def test_k_equals_n_is_fully_forced(self):
        # With k == n every step is forced, so each window of n
        # consecutive steps is a permutation of the processors.
        sched = KBoundedFairScheduler(PROCS, k=3, seed=0)
        prefix = take(sched, 30)
        for start in range(len(prefix) - 2):
            assert set(prefix[start : start + 3]) == set(PROCS)


class TestRandomFair:
    def test_seeded_reproducible(self):
        a = RandomFairScheduler(PROCS, seed=9)
        b = RandomFairScheduler(PROCS, seed=9)
        assert take(a, 30) == take(b, 30)

    def test_eventually_fair(self):
        sched = RandomFairScheduler(PROCS, seed=0)
        assert is_fair_prefix(take(sched, 200), PROCS)


class TestReplay:
    def test_prefix_then_fallback(self):
        sched = ReplayScheduler(["c", "c"], RoundRobinScheduler(PROCS))
        assert take(sched, 5) == ["c", "c", "a", "b", "c"]

    def test_exhausted_without_fallback(self):
        sched = ReplayScheduler(["a"])
        sched.next_processor(0, None)
        with pytest.raises(ScheduleError):
            sched.next_processor(1, None)

    def test_fallback_sees_true_step_indices(self):
        """Regression: the fallback used to be handed a shifted clock
        (``step_index - len(prefix)``), so any scheduler keying decisions
        on the absolute step index -- deadlines, adaptive policies --
        worked off a lie.  The true index is now passed through; the
        fallback re-anchors its positional state via ``rebase``."""
        from repro.runtime.scheduler import Scheduler

        class IndexRecorder(Scheduler):
            def __init__(self):
                self.seen = []

            def next_processor(self, step_index, view):
                self.seen.append(step_index)
                return "a"

        recorder = IndexRecorder()
        sched = ReplayScheduler(["b", "c"], recorder)
        take(sched, 5)
        assert recorder.seen == [2, 3, 4]

    def test_kbounded_fallback_stays_bounded_after_prefix(self):
        """With the true clock + rebase, a k-bounded fallback's staggered
        deadlines anchor at the handoff point, so its guarantee holds on
        the suffix it actually controls."""
        from repro.runtime import is_k_bounded_prefix

        k = 4
        fallback = KBoundedFairScheduler(PROCS, k=k, seed=7)
        sched = ReplayScheduler(["a", "a", "a"], fallback)
        picks = take(sched, 3 + 20 * k)
        assert is_k_bounded_prefix(picks[3:], PROCS, k)

    def test_reset_replays_prefix_and_fallback(self):
        sched = ReplayScheduler(["c"], RoundRobinScheduler(PROCS))
        first = take(sched, 6)
        sched.reset()
        assert take(sched, 6) == first


class TestStarvation:
    def test_starved_never_runs(self):
        sched = StarvationScheduler(PROCS, starved=["b"])
        assert "b" not in take(sched, 50)

    def test_cannot_starve_all(self):
        with pytest.raises(ScheduleError):
            StarvationScheduler(PROCS, starved=PROCS)


class TestPrefixValidation:
    def test_fair_prefix(self):
        assert is_fair_prefix(["a", "b", "c"], PROCS)
        assert not is_fair_prefix(["a", "b"], PROCS)

    def test_k_bounded_prefix(self):
        assert is_k_bounded_prefix(["a", "b", "c", "a", "b", "c"], PROCS, 3)
        assert not is_k_bounded_prefix(["a", "a", "a", "b", "c"], PROCS, 3)
        assert not is_k_bounded_prefix(["a"], PROCS, 2)  # k < |P|


class TestPeriodicProperty:
    """``Scheduler.periodic`` gates cycle detection (see run_until_cycle).

    Regression: stateful schedulers used to be fed to cycle detection
    as if positional, silently producing bogus lassos.  The property is
    the contract that stops that: positional schedulers answer True,
    schedulers with hidden state answer False.
    """

    def test_positional_schedulers_are_periodic(self):
        lab = Labeling({"a": 1, "b": 2, "c": 1})
        assert RoundRobinScheduler(PROCS).periodic
        assert ClassRoundRobinScheduler(PROCS, lab).periodic
        assert StarvationScheduler(PROCS, starved=["b"]).periodic

    def test_stateful_schedulers_are_not(self):
        assert not RandomFairScheduler(PROCS, seed=0).periodic
        assert not KBoundedFairScheduler(PROCS, k=3, seed=0).periodic

    def test_replay_periodic_iff_fallback_is(self):
        assert ReplayScheduler(["a"], RoundRobinScheduler(PROCS)).periodic
        assert not ReplayScheduler(["a"], RandomFairScheduler(PROCS, seed=0)).periodic
        # a bare prefix is a finite schedule: nothing periodic about it
        assert not ReplayScheduler(["a", "b"]).periodic
