"""Regression test: ``lockstep_holds`` must check the post-run boundary.

The old loop checked boundaries 0..rounds-1 and never looked again after
the final ``run(stride)``, so a divergence introduced during the last
round passed undetected.
"""

from repro.core import InstructionSet, Network, System
from repro.runtime import (
    Executor,
    FunctionalProgram,
    Internal,
    Read,
    RoundRobinScheduler,
)
from repro.runtime.trace import lockstep_holds


def diverging_pair():
    """Two processors with identical initial states reading *different*
    variables (p1's is marked 1, p2's is 0): their local states are
    uniform at boundary 0 and split as soon as each takes its first step.
    """
    net = Network(("n",), {"p1": {"n": "v1"}, "p2": {"n": "v2"}})
    system = System(net, {"v1": 1}, InstructionSet.S)
    prog = FunctionalProgram(
        initial=lambda s0: "r",
        action=lambda st: Read("n") if st == "r" else Internal("i"),
        step=lambda st, a, r: ("got", r) if st == "r" else st,
    )
    return Executor(system, prog, RoundRobinScheduler(("p1", "p2")))


class TestFinalBoundary:
    def test_divergence_in_last_round_is_caught(self):
        # Boundary 0 is uniform (both "r"), so with the old 0..rounds-1
        # sampling this run passed; the divergence only exists at the
        # boundary *after* the single round.
        ex = diverging_pair()
        assert not lockstep_holds(ex, [("p1", "p2")], rounds=1, stride=2)

    def test_initial_divergence_still_caught(self):
        ex = diverging_pair()
        ex.run(2)  # states already split before the first boundary
        assert not lockstep_holds(ex, [("p1", "p2")], rounds=1, stride=2)

    def test_uniform_classes_pass_all_boundaries(self):
        ex = diverging_pair()
        assert lockstep_holds(ex, [("p1",), ("p2",)], rounds=3, stride=2)
