"""Property-based empirical validation of Theorems 4 and 8.

The strongest check in the repository: compute the similarity labeling,
build the class round-robin schedule from Theorem 4's proof, run
*arbitrary deterministic programs*, and assert that same-labeled nodes
carry equal states at every round boundary.  A wrong environment
definition for any model is caught here (e.g. swapping SET and MULTISET
breaks the S or Q run).
"""

from hypothesis import given, settings

from repro.core import (
    EnvironmentModel,
    InstructionSet,
    compute_similarity_labeling,
    satisfies_locking_condition,
)
from repro.runtime import (
    ClassRoundRobinScheduler,
    Executor,
    RandomProgramL,
    RandomProgramQ,
    RandomProgramS,
    lockstep_holds,
)

from ..strategies import systems

SETTINGS = settings(max_examples=25, deadline=None)


def classes_of(system, model):
    theta = compute_similarity_labeling(system, model).labeling
    return theta, [sorted(b, key=repr) for b in theta.blocks]


@SETTINGS
@given(systems(instruction_set=InstructionSet.Q))
def test_theorem4_lockstep_q(system):
    theta, classes = classes_of(system, EnvironmentModel.MULTISET)
    for seed in (0, 1):
        ex = Executor(
            system,
            RandomProgramQ(system.names, seed=seed),
            ClassRoundRobinScheduler(system.processors, theta),
        )
        assert lockstep_holds(ex, classes, rounds=30)


@SETTINGS
@given(systems(instruction_set=InstructionSet.S))
def test_theorem4_analog_lockstep_s(system):
    """SET-model classes stay in lockstep under reads/writes."""
    theta, classes = classes_of(system, EnvironmentModel.SET)
    for seed in (0, 1):
        ex = Executor(
            system,
            RandomProgramS(system.names, seed=seed),
            ClassRoundRobinScheduler(system.processors, theta),
        )
        assert lockstep_holds(ex, classes, rounds=30)


@SETTINGS
@given(systems(instruction_set=InstructionSet.L))
def test_theorem8_lockstep_l(system):
    """Theorem 8: Q-labelings satisfying the locking condition survive
    lock instructions."""
    theta, classes = classes_of(system, EnvironmentModel.MULTISET)
    if not satisfies_locking_condition(system.network, theta):
        return  # Theorem 8's hypothesis fails; no lockstep promised
    for seed in (0, 1):
        ex = Executor(
            system,
            RandomProgramL(system.names, seed=seed),
            ClassRoundRobinScheduler(system.processors, theta),
        )
        assert lockstep_holds(ex, classes, rounds=30)
