"""Unit tests for the Uniqueness/Stability checker."""

from repro.core import InstructionSet
from repro.runtime import (
    FunctionalProgram,
    Internal,
    RoundRobinScheduler,
    run_selection,
    standard_schedules,
    verify_selection_program,
)
from repro.topologies import figure1_system


def select_self_immediately():
    return FunctionalProgram(
        initial=lambda s0: "s",
        action=lambda st: Internal("go"),
        step=lambda st, a, r: "sel",
        selected=lambda st: st == "sel",
    )


def select_never():
    return FunctionalProgram(
        initial=lambda s0: "s",
        action=lambda st: Internal("spin"),
        step=lambda st, a, r: st,
    )


def flapping_selector():
    return FunctionalProgram(
        initial=lambda s0: 0,
        action=lambda st: Internal("t"),
        step=lambda st, a, r: (st + 1) % 4,
        selected=lambda st: st == 1,
    )


class TestRunSelection:
    def test_everyone_selects_violates_uniqueness(self, fig1_q):
        run = run_selection(fig1_q, select_self_immediately(),
                            RoundRobinScheduler(fig1_q.processors), "rr", max_steps=200)
        assert not run.unique
        assert not run.ok

    def test_nobody_selects(self, fig1_q):
        run = run_selection(fig1_q, select_never(),
                            RoundRobinScheduler(fig1_q.processors), "rr", max_steps=200)
        assert run.winner is None
        assert not run.ok

    def test_instability_detected(self, fig1_q):
        run = run_selection(fig1_q, flapping_selector(),
                            RoundRobinScheduler(fig1_q.processors), "rr", max_steps=200)
        assert not run.stable


class TestBattery:
    def test_standard_schedules_cover_classes(self, fig1_q):
        names = [name for name, _ in standard_schedules(fig1_q)]
        assert any("round-robin" in n for n in names)
        assert any("k-bounded" in n for n in names)
        assert any("random-fair" in n for n in names)

    def test_verdict_aggregation(self, fig1_q):
        verdict = verify_selection_program(fig1_q, select_never(), max_steps=100)
        assert not verdict.all_ok
        assert verdict.winners == ()
