"""Crash injection: fair-schedule guarantees degrade exactly as FLP says."""

import pytest

from repro.algorithms import Algorithm2Program, LabelTables
from repro.core import similarity_labeling
from repro.exceptions import ScheduleError
from repro.runtime import (
    CrashScheduler,
    Executor,
    IdleProgram,
    RoundRobinScheduler,
    run_with_crash,
)
from repro.topologies import figure2_system


class TestCrashScheduler:
    def test_crashed_processor_never_runs_after_limit(self):
        procs = ("a", "b", "c")
        sched = CrashScheduler(RoundRobinScheduler(procs), {"b": 5}, procs)
        picks = [sched.next_processor(i, None) for i in range(30)]
        assert "b" in picks[:5] or True  # may appear before the crash
        assert "b" not in picks[5:]

    def test_crash_at_zero_means_never_runs(self):
        procs = ("a", "b")
        sched = CrashScheduler(RoundRobinScheduler(procs), {"b": 0}, procs)
        picks = [sched.next_processor(i, None) for i in range(10)]
        assert set(picks) == {"a"}

    def test_everyone_crashing_rejected(self):
        procs = ("a", "b")
        with pytest.raises(ScheduleError):
            CrashScheduler(RoundRobinScheduler(procs), {"a": 0, "b": 0}, procs)

    def test_everyone_crashing_later_accepted(self):
        """Regression: a crash step for every processor used to be rejected
        outright, even when the crashes lie beyond any finite horizon the
        caller will run.  Only nobody-alive-at-step-0 is degenerate."""
        procs = ("a", "b")
        sched = CrashScheduler(
            RoundRobinScheduler(procs), {"a": 5, "b": 1_000}, procs
        )
        picks = [sched.next_processor(i, None) for i in range(20)]
        assert "a" not in picks[5:]
        assert "b" in picks[5:]

    def test_all_crashed_mid_run_raises(self):
        procs = ("a", "b")
        sched = CrashScheduler(RoundRobinScheduler(procs), {"a": 2, "b": 3}, procs)
        for i in range(3):
            sched.next_processor(i, None)
        with pytest.raises(ScheduleError, match="every processor has crashed"):
            sched.next_processor(3, None)

    def test_ghost_processor_in_crash_at_rejected(self):
        """Regression: a crash plan naming a processor the system does not
        have used to be accepted silently -- the ghost never matched a
        scheduled processor, so the intended crash simply didn't happen
        and ``run_with_crash`` reported it as having crashed anyway."""
        procs = ("a", "b", "c")
        with pytest.raises(ScheduleError, match="unknown processors.*'z'"):
            CrashScheduler(RoundRobinScheduler(procs), {"z": 5}, procs)

    def test_ghost_and_real_mixed_rejected(self):
        procs = ("a", "b")
        with pytest.raises(ScheduleError, match="unknown processors"):
            CrashScheduler(
                RoundRobinScheduler(procs), {"a": 3, "ghost": 1}, procs
            )


class TestAlgorithm2UnderCrashes:
    def _setup(self):
        system = figure2_system()
        theta = similarity_labeling(system)
        tables = LabelTables.from_labeled_system(system, theta)
        return system, theta, Algorithm2Program(tables)

    def test_crash_before_posting_blocks_p3(self):
        """p3's kind-2 alibi needs BOTH p1 and p2's singleton posts; if p1
        crashes before ever posting, p3 can never learn -- the fair-
        schedule assumption of Theorem 6 is essential."""
        system, theta, program = self._setup()
        report = run_with_crash(
            system,
            program,
            RoundRobinScheduler(system.processors),
            crash_at={"p1": 0},
            steps=20_000,
            done_predicate=Algorithm2Program.is_done,
        )
        assert not report.done["p3"]

    def test_crash_after_posting_is_harmless(self):
        """Posts persist in Q variables: once p1 has posted its singleton,
        its crash no longer blocks anyone."""
        system, theta, program = self._setup()
        report = run_with_crash(
            system,
            program,
            RoundRobinScheduler(system.processors),
            crash_at={"p1": 1_000},  # long after convergence
            steps=20_000,
            done_predicate=Algorithm2Program.is_done,
        )
        assert all(report.done.values())

    def test_survivors_never_learn_wrong_labels(self):
        system, theta, program = self._setup()
        report = run_with_crash(
            system,
            program,
            RoundRobinScheduler(system.processors),
            crash_at={"p2": 3},
            steps=20_000,
            done_predicate=Algorithm2Program.is_done,
        )
        executor = None  # soundness asserted via the done flags + a re-run
        # Re-run and check PEC soundness directly.
        sched = CrashScheduler(RoundRobinScheduler(system.processors), {"p2": 3}, system.processors)
        ex = Executor(system, program, sched)
        for _ in range(5_000):
            ex.step()
            for p in system.processors:
                assert theta[p] in ex.local[p].pec


class TestIdleUnderCrash:
    def test_report_shape(self):
        system = figure2_system()
        report = run_with_crash(
            system,
            IdleProgram(),
            RoundRobinScheduler(system.processors),
            crash_at={"p1": 2},
            steps=100,
        )
        assert report.crashed == (("p1", 2),)
        assert report.selected == ()

    def test_crashes_beyond_horizon_not_reported(self):
        """Regression: ``run_with_crash`` used to echo the whole crash
        configuration; a crash scheduled after ``steps`` never happened
        during the run and must not appear in the report."""
        system = figure2_system()
        report = run_with_crash(
            system,
            IdleProgram(),
            RoundRobinScheduler(system.processors),
            crash_at={"p1": 2, "p2": 500},
            steps=100,
        )
        assert report.crashed == (("p1", 2),)
