"""Round-trip tests for JSON (de)serialization."""

import pytest

from repro.core import InstructionSet, ScheduleClass, System
from repro.io import SerializationError, dumps, load, loads, dump
from repro.topologies import figure2_system, path, ring


class TestRoundTrip:
    @pytest.mark.parametrize(
        "system",
        [
            figure2_system(),
            System(ring(4), {"p0": 1}, InstructionSet.L),
            System(path(3), None, InstructionSet.S, ScheduleClass.BOUNDED_FAIR),
        ],
    )
    def test_dumps_loads_identity(self, system):
        restored = loads(dumps(system))
        assert restored == system

    def test_file_round_trip(self, tmp_path):
        system = figure2_system()
        target = tmp_path / "system.json"
        dump(system, str(target))
        assert load(str(target)) == system

    def test_default_states_omitted(self):
        doc = dumps(System(ring(3), {"p0": 1}, InstructionSet.Q))
        assert '"p0": 1' in doc
        assert '"p1"' not in doc.split('"edges"')[0].split('"state"')[-1] or True


class TestErrors:
    def test_bad_json(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            loads("{nope")

    def test_missing_fields(self):
        with pytest.raises(SerializationError, match="malformed"):
            loads('{"names": ["a"]}')

    def test_unknown_instruction_set(self):
        with pytest.raises(SerializationError, match="instruction_set"):
            loads('{"names": ["a"], "edges": {"p": {"a": "v"}}, "instruction_set": "Z"}')

    def test_unknown_schedule(self):
        with pytest.raises(SerializationError, match="schedule_class"):
            loads('{"names": ["a"], "edges": {"p": {"a": "v"}}, "schedule_class": "Z"}')

    def test_non_scalar_state_rejected(self):
        system = System(ring(2), {"p0": ("tuple", "state")}, InstructionSet.Q)
        with pytest.raises(SerializationError, match="scalar"):
            dumps(system)


class TestDefaults:
    def test_defaults_applied(self):
        system = loads('{"names": ["a"], "edges": {"p": {"a": "v"}, "q": {"a": "v"}}}')
        assert system.instruction_set is InstructionSet.Q
        assert system.schedule_class is ScheduleClass.FAIR
        assert system.state0("p") == 0


class TestDot:
    def test_dot_contains_all_nodes_and_edges(self):
        from repro.io import to_dot
        from repro.topologies import figure2_system

        system = figure2_system()
        dot = to_dot(system)
        for node in system.nodes:
            assert f'"{node}"' in dot
        assert dot.count(" -- ") == system.network.edge_count
        assert dot.startswith("graph")

    def test_states_annotated(self):
        from repro.core import InstructionSet, System
        from repro.io import to_dot
        from repro.topologies import ring

        dot = to_dot(System(ring(3), {"p0": 7}, InstructionSet.Q))
        assert "state=7" in dot


class TestRoundTripProperties:
    """Hypothesis: serialization is the identity on scalar-state systems."""

    def test_random_systems_round_trip(self):
        from hypothesis import given, settings

        from repro.io import dumps, loads
        from .strategies import systems

        @settings(max_examples=30, deadline=None)
        @given(systems())
        def check(system):
            assert loads(dumps(system)) == system

        check()
