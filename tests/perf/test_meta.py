"""The shared benchmark meta block (and its honesty flag)."""

import os

from repro.perf.meta import bench_meta


class TestBenchMeta:
    def test_serial_meta_has_no_worker_fields(self):
        meta = bench_meta()
        assert set(meta) == {"timestamp", "python", "cpu_count"}
        assert meta["cpu_count"] >= 1

    def test_degraded_iff_oversubscribed(self):
        cpus = os.cpu_count() or 1
        honest = bench_meta(requested_workers=cpus)
        assert honest["requested_workers"] == cpus
        assert honest["degraded"] is False
        oversub = bench_meta(requested_workers=cpus + 1)
        assert oversub["degraded"] is True

    def test_zero_workers_is_never_degraded(self):
        assert bench_meta(requested_workers=0)["degraded"] is False
