"""Smoke tests for the MP fault-delivery microbenchmark."""

import json

from repro.perf.mp_bench import _CONFIGS, format_mp_bench, run_mp_bench


class TestRunMPBench:
    def test_smoke_document_shape(self, tmp_path):
        out = tmp_path / "BENCH_mp_faults.json"
        doc = run_mp_bench(
            sizes=(8,), deliveries=400, repeats=1, output=str(out)
        )
        assert out.exists()
        assert json.loads(out.read_text()) == doc
        assert set(doc["meta"]) == {"timestamp", "python", "cpu_count"}
        assert len(doc["rows"]) == len(_CONFIGS)
        by_config = {r["config"]: r for r in doc["rows"]}
        assert set(by_config) == set(_CONFIGS)
        for row in doc["rows"]:
            assert row["n"] == 8
            assert row["elapsed_s"] > 0
            assert row["deliveries"] > 0
            assert row["throughput_per_s"] > 0

    def test_fault_free_configs_lose_nothing(self):
        doc = run_mp_bench(sizes=(6,), deliveries=200, output=None)
        by_config = {r["config"]: r for r in doc["rows"]}
        for name in ("reliable", "faulty-passthrough"):
            row = by_config[name]
            assert row["drops"] == 0
            assert row["duplicates"] == 0
            assert row["delayed"] == 0

    def test_lossy_configs_exercise_the_fault_path(self):
        doc = run_mp_bench(sizes=(8,), deliveries=400, output=None)
        by_config = {r["config"]: r for r in doc["rows"]}
        assert by_config["lossy"]["drops"] > 0
        assert by_config["lossy-dup-delay"]["duplicates"] > 0
        assert by_config["lossy-dup-delay"]["delayed"] > 0

    def test_no_output_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_mp_bench(sizes=(4,), deliveries=50, output=None)
        assert list(tmp_path.iterdir()) == []

    def test_format_renders(self):
        doc = run_mp_bench(sizes=(4,), deliveries=50, output=None)
        text = format_mp_bench(doc)
        assert "mp fault-delivery microbench" in text
        assert "lossy-dup-delay" in text
