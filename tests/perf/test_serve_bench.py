"""Smoke and determinism tests for the serving benchmark."""

import json

from repro.perf.serve_bench import (
    build_workload,
    format_serve_bench,
    result_digest,
    run_serve_bench,
)


class TestWorkload:
    def test_seeded_and_reproducible(self):
        assert build_workload(16, 7) == build_workload(16, 7)
        assert build_workload(16, 7) != build_workload(16, 8)

    def test_every_request_is_well_formed(self):
        for request in build_workload(40, 3):
            assert request["op"] in ("similarity", "witness", "explore")
            if request["op"] == "similarity":
                scenario = request["scenario"]
                if scenario["topology"] == "alternating-ring":
                    assert scenario["size"] % 2 == 0


class TestResultDigest:
    def test_strips_interleaving_dependent_counters(self):
        a = {"op": "witness", "count": 2, "stats": {"cache_hits": 5},
             "cache_misses": 9}
        b = {"op": "witness", "count": 2, "stats": {"cache_hits": 0},
             "cache_misses": 0}
        assert result_digest(a) == result_digest(b)
        assert result_digest(a) != result_digest(dict(a, count=3))


class TestRunServeBench:
    def test_smoke_and_acceptance(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        det_out = tmp_path / "det.json"
        doc = run_serve_bench(
            store_dir=str(tmp_path / "store"),
            requests=8,
            seed=7,
            output=str(out),
            determinism_output=str(det_out),
        )
        assert json.loads(out.read_text()) == doc

        det = doc["determinism"]
        # The tentpole acceptance criteria, as data:
        assert det["warm_witness_cache_misses"] == 0
        assert det["cold_warm_agree"] is True
        assert len(det["results"]) == 8
        assert det["store"]["decisions"] >= 0
        assert sum(det["workload"]["mix"].values()) == 8
        # Timings present but segregated from the comparable section.
        for phase in ("cold", "warm"):
            row = doc["timings"][phase]
            assert row["p50_ms"] >= 0 and row["p99_ms"] >= row["p50_ms"]
        assert json.loads(det_out.read_text()) == det

        text = format_serve_bench(doc)
        assert "cold" in text and "warm" in text and "must be 0" in text
