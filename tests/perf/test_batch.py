"""Unit tests for the batch similarity driver and its cache."""

import pytest

from repro.core import InstructionSet, System, compute_similarity_labeling, single_mark_family
from repro.perf import BatchReport, SimilarityCache, batch_similarity, system_fingerprint
from repro.topologies import ring


def family(n=12, members=None):
    return single_mark_family(ring(n), processors=members)


class TestFingerprint:
    def test_equal_systems_equal_fingerprints(self):
        a = System(ring(5), {"p0": 1}, InstructionSet.Q)
        b = System(ring(5), {"p0": 1}, InstructionSet.Q)
        assert system_fingerprint(a) == system_fingerprint(b)

    def test_state_changes_fingerprint(self):
        a = System(ring(5), {"p0": 1}, InstructionSet.Q)
        b = System(ring(5), {"p1": 1}, InstructionSet.Q)
        c = System(ring(5), None, InstructionSet.Q)
        assert len({system_fingerprint(s) for s in (a, b, c)}) == 3

    def test_instruction_set_changes_fingerprint(self):
        a = System(ring(5), None, InstructionSet.Q)
        b = System(ring(5), None, InstructionSet.L)
        assert system_fingerprint(a) != system_fingerprint(b)


class TestSimilarityCache:
    def test_counters(self):
        cache = SimilarityCache()
        assert cache.get("x") is None
        result = compute_similarity_labeling(System(ring(3), None, InstructionSet.Q))
        cache.put("x", result)
        assert cache.get("x") is result
        assert (cache.hits, cache.misses) == (1, 1)
        assert "x" in cache and len(cache) == 1

    def test_peek_does_not_count(self):
        cache = SimilarityCache()
        result = compute_similarity_labeling(System(ring(3), None, InstructionSet.Q))
        cache.put("x", result)
        assert cache.peek("x") is result
        assert (cache.hits, cache.misses) == (0, 0)


class TestBatchSimilarity:
    def test_results_in_input_order(self):
        fam = family()
        report = batch_similarity(fam.members, workers=0)
        assert isinstance(report, BatchReport)
        assert len(report.results) == len(fam.members)
        direct = [
            compute_similarity_labeling(m).labeling for m in fam.members
        ]
        for got, want, member in zip(report.results, direct, fam.members):
            assert {n: got.labeling[n] for n in member.nodes} == {
                n: want[n] for n in member.nodes
            }

    def test_duplicates_solved_once(self):
        members = family(8, members=["p0", "p1"]).members
        batch = list(members) * 3
        report = batch_similarity(batch, workers=0)
        assert report.distinct == 2
        assert report.cache_misses == 2
        assert report.cache_hits == 4
        assert len(report.results) == 6
        assert report.results[0] is report.results[2] is report.results[4]

    def test_shared_cache_across_calls(self):
        fam = family(8)
        cache = SimilarityCache()
        first = batch_similarity(fam.members, workers=0, cache=cache)
        second = batch_similarity(fam.members, workers=0, cache=cache)
        assert first.cache_misses == len(fam.members)
        assert second.cache_misses == 0
        assert second.cache_hits == len(fam.members)
        assert second.distinct == 0

    def test_process_pool_matches_serial(self):
        fam = family(10)
        serial = batch_similarity(fam.members, workers=0)
        pooled = batch_similarity(fam.members, workers=2)
        assert pooled.workers == 2
        for a, b, member in zip(serial.results, pooled.results, fam.members):
            assert {n: a.labeling[n] for n in member.nodes} == {
                n: b.labeling[n] for n in member.nodes
            }

    def test_empty_batch(self):
        report = batch_similarity([], workers=0)
        assert report.results == ()
        assert report.distinct == 0

    @pytest.mark.parametrize("engine", ["literal", "signatures", "worklist"])
    def test_engine_forwarded(self, engine):
        members = family(6, members=["p0"]).members
        report = batch_similarity(members, engine=engine, workers=0)
        direct = compute_similarity_labeling(members[0], engine=engine)
        assert {n: report.results[0].labeling[n] for n in members[0].nodes} == {
            n: direct.labeling[n] for n in members[0].nodes
        }
