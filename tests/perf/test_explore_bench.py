"""Smoke tests for the schedule-explorer benchmark harness."""

import json

from repro.analysis.explore import ExploreSpec
from repro.perf.explore_bench import (
    default_cases,
    format_explore_bench,
    run_explore_bench,
)

#: A CI-sized case set: one violation, one certification.
TINY_CASES = (
    (
        "dp4-deadlock",
        ExploreSpec(
            scenario={"topology": "dining", "size": 4, "program": "left-first"},
            max_depth=8,
            invariants=("exclusion",),
        ),
    ),
    (
        "ring3-lockstep",
        ExploreSpec(
            scenario={"topology": "ring", "size": 3, "model": "Q",
                      "program": "random"},
            max_depth=6,
            fairness="k-bounded",
            k=3,
            invariants=("lockstep",),
            check_deadlock=False,
        ),
    ),
)


class TestRunExploreBench:
    def test_smoke_document_shape(self, tmp_path):
        out = tmp_path / "BENCH_explore.json"
        doc = run_explore_bench(cases=TINY_CASES, workers=0, output=str(out))
        assert out.exists()
        assert json.loads(out.read_text()) == doc
        assert doc["all_agree"] is True
        deadlock, lockstep = doc["cases"]
        assert deadlock["case"] == "dp4-deadlock"
        assert deadlock["verdict"] == "violation"
        assert deadlock["violation"]["kind"] == "deadlock"
        assert deadlock["violation"]["depth"] == 8
        # symmetry reduction must actually reduce on the uniform table
        assert deadlock["states_reduced"] < deadlock["states_unreduced"]
        assert deadlock["group_size"] == 4
        assert lockstep["verdict"] == "certified"
        assert lockstep["violation"] is None
        for row in doc["cases"]:
            assert row["agreement"] is True
            assert row["unreduced_s"] >= 0
            assert row["reduced_s"] >= 0
            assert row["sharded_s"] >= 0
            assert "speedup_sharded" in row
        # workers=0 never oversubscribes, so the run is not degraded
        assert doc["meta"]["requested_workers"] == 0
        assert doc["meta"]["degraded"] is False

    def test_default_cases_are_the_headline_experiments(self):
        names = [name for name, _spec in default_cases()]
        assert names == ["dp-deadlock", "dp-prime-certified", "ring-lockstep"]
        specs = dict(default_cases())
        assert specs["dp-deadlock"].scenario["topology"] == "dining"
        assert specs["dp-prime-certified"].scenario["alternating"] is True
        assert specs["ring-lockstep"].fairness == "k-bounded"

    def test_format_renders(self):
        doc = run_explore_bench(cases=TINY_CASES[:1], workers=0, output=None)
        text = format_explore_bench(doc)
        assert "dp4-deadlock" in text
        assert "all verdicts agree: yes" in text
