"""Smoke tests for the parametric (cutoff-detection) benchmark harness."""

import json

from repro.perf.parametric_bench import (
    DEFAULT_CASES,
    format_parametric_bench,
    run_parametric_bench,
)

TINY_CASES = (("ring", "lockstep"),)


class TestRunParametricBench:
    def test_smoke_document_shape(self, tmp_path):
        out = tmp_path / "BENCH_parametric.json"
        doc = run_parametric_bench(cases=TINY_CASES, output=str(out))
        assert out.exists()
        assert json.loads(out.read_text()) == doc
        assert doc["all_confirmed"] is True
        assert set(doc) == {"meta", "determinism", "timings", "all_confirmed"}
        (timing,) = doc["timings"]
        assert timing["case"] == "ring/lockstep"
        assert timing["cutoff"] == 4
        assert timing["verdict"] == "certified"
        assert timing["confirmed"] is True
        assert timing["elapsed_s"] >= 0

    def test_determinism_section_is_seed_comparable(self, tmp_path):
        det = tmp_path / "param_det.json"
        doc = run_parametric_bench(
            cases=TINY_CASES,
            output=str(tmp_path / "bench.json"),
            determinism_output=str(det),
        )
        recorded = json.loads(det.read_text())
        assert recorded == doc["determinism"]
        report = recorded["ring/lockstep"]
        assert report["certificate"]["cutoff"] == 4
        assert report["verify_cutoff"]["confirmed"] is True
        # no timings may leak into the seed-compared section
        assert "timings" not in recorded
        text = det.read_text()
        assert "elapsed" not in text

    def test_default_cases_are_the_headline_claims(self):
        assert ("dp", "deadlock") in DEFAULT_CASES
        assert ("dp-prime", "deadlock-free") in DEFAULT_CASES
        assert ("ring", "lockstep") in DEFAULT_CASES

    def test_format_renders_table_and_claims(self, tmp_path):
        doc = run_parametric_bench(
            cases=TINY_CASES, output=str(tmp_path / "bench.json")
        )
        text = format_parametric_bench(doc)
        assert "ring/lockstep" in text
        assert "for all n >= 4" in text
