"""Smoke tests for the refinement microbenchmark harness."""

import json

import pytest

from repro.perf.microbench import format_microbench, run_microbench


class TestRunMicrobench:
    def test_smoke_document_shape(self, tmp_path):
        out = tmp_path / "BENCH_refinement.json"
        doc = run_microbench(
            sizes=(12,),
            topologies=("ring",),
            batch_n=12,
            family_size=2,
            workers=0,
            output=str(out),
        )
        assert out.exists()
        assert json.loads(out.read_text()) == doc
        assert {r["engine"] for r in doc["engine_times"]} == {
            "literal", "signatures", "worklist"
        }
        for row in doc["engine_times"]:
            assert row["cached_s"] > 0
            assert row["reference_s"] > 0
            assert row["classes"] == 24  # marked ring: every node unique
        batch = doc["batch"]
        assert batch["family_size"] == 2
        assert batch["serial_uncached_s"] > 0
        assert batch["batch_cached_s"] > 0
        assert batch["speedup"] is not None

    def test_gates_record_null_not_crash(self):
        # 150 > the literal gate (100): the literal cells must be null.
        doc = run_microbench(
            sizes=(150,),
            topologies=("ring",),
            engines=("literal", "worklist"),
            batch_n=12,
            family_size=1,
            workers=0,
            measure_baseline=False,
            output=None,
        )
        by_engine = {r["engine"]: r for r in doc["engine_times"]}
        assert by_engine["literal"]["cached_s"] is None
        assert by_engine["worklist"]["cached_s"] > 0
        assert doc["batch"]["serial_uncached_s"] is None
        assert doc["batch"]["speedup"] is None

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            run_microbench(sizes=(5,), topologies=("moebius",), output=None)

    def test_format_renders(self):
        doc = run_microbench(
            sizes=(10,),
            topologies=("ring",),
            engines=("worklist",),
            batch_n=10,
            family_size=1,
            workers=0,
            output=None,
        )
        text = format_microbench(doc)
        assert "worklist" in text
        assert "batch: ring(10)" in text
