"""Smoke tests for the witness-sweep benchmark harness."""

import json

from repro.core.hierarchy import POWER_ORDER
from repro.perf.witness_bench import (
    ADJACENT_PAIRS,
    format_witness_bench,
    run_witness_bench,
)


class TestRunWitnessBench:
    def test_smoke_document_shape(self, tmp_path):
        out = tmp_path / "BENCH_witness.json"
        doc = run_witness_bench(
            pairs=[("Q", "L")],
            max_processors=2,
            max_names=1,
            max_variables=2,
            workers=0,
            output=str(out),
        )
        assert out.exists()
        assert json.loads(out.read_text()) == doc
        assert doc["all_agree"] is True
        (row,) = doc["pairs"]
        assert row["weaker"] == "Q" and row["stronger"] == "L"
        assert row["witnesses"] >= 1
        assert row["serial_s"] > 0
        assert row["sharded_s"] > 0
        assert row["cached_s"] > 0
        assert row["agreement"] is True
        assert row["serial_cache"]["misses"] > 0
        # The warm re-run must answer every decision from the cache.
        assert row["cached_cache"]["misses"] == 0
        assert row["cached_cache"]["hit_rate"] == 1.0

    def test_adjacent_pairs_cover_power_order(self):
        assert len(ADJACENT_PAIRS) == len(POWER_ORDER) - 1
        assert all(
            (weaker, stronger) == (POWER_ORDER[i], POWER_ORDER[i + 1])
            for i, (weaker, stronger) in enumerate(ADJACENT_PAIRS)
        )

    def test_format_renders(self):
        doc = run_witness_bench(
            pairs=[("Q", "L")],
            max_processors=2,
            max_names=1,
            max_variables=1,
            workers=0,
            output=None,
        )
        text = format_witness_bench(doc)
        assert "Q<L" in text
        assert "all lists agree: yes" in text
