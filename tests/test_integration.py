"""End-to-end integration: the full pipeline on fresh systems.

Executable documentation: build a system, analyze it, synthesize the
selection program the analysis promises, run it under the schedule
battery, and verify the paper-level specification -- in one test per
model.
"""

import pytest

from repro.algorithms import (
    Algorithm2Program,
    LabelTables,
    select_program,
)
from repro.core import (
    EnvironmentModel,
    InstructionSet,
    Network,
    ScheduleClass,
    System,
    decide_selection,
    quotient_system,
    similarity_labeling,
)
from repro.runtime import (
    Executor,
    RoundRobinScheduler,
    verify_selection_program,
)


def bespoke_network():
    """A fresh system not used elsewhere: a 'wheel' of three spokes
    around a hub variable, with one spoke doubled."""
    return Network(
        ("spoke", "rim"),
        {
            "a": {"spoke": "hub", "rim": "r_ab"},
            "b": {"spoke": "hub", "rim": "r_ab"},
            "c": {"spoke": "hub", "rim": "r_c"},
        },
    )


class TestFullPipelineQ:
    def test_analyze_then_select(self):
        system = System(bespoke_network(), None, InstructionSet.Q)
        theta = similarity_labeling(system)
        # a,b share everything -> similar; c's rim variable is private.
        assert theta["a"] == theta["b"] != theta["c"]

        decision = decide_selection(system)
        assert decision.possible
        assert decision.unique_processors == ("c",)

        # The quotient tells the same story in 2+2 classes.
        q = quotient_system(system, theta)
        assert q.processor_class_count == 2
        assert q.selection_possible()

        program = select_program(system)
        verdict = verify_selection_program(system, program, max_steps=60_000)
        assert verdict.all_ok
        assert verdict.winners == ("c",)

    def test_labels_learned_match_analysis(self):
        system = System(bespoke_network(), None, InstructionSet.Q)
        theta = similarity_labeling(system)
        tables = LabelTables.from_labeled_system(system, theta)
        executor = Executor(
            system, Algorithm2Program(tables), RoundRobinScheduler(system.processors)
        )
        for _ in range(30_000):
            executor.step()
            if all(Algorithm2Program.is_done(executor.local[p]) for p in system.processors):
                break
        for p in system.processors:
            assert Algorithm2Program.learned_label(executor.local[p]) == theta[p]


class TestFullPipelineL:
    def test_lock_race_rescues_the_twins(self):
        system = System(bespoke_network(), None, InstructionSet.L)
        decision = decide_selection(system)
        assert decision.possible  # a,b race on hub and r_ab

        program = select_program(system)
        verdict = verify_selection_program(system, program, max_steps=400_000)
        assert verdict.all_ok


class TestFullPipelineBFS:
    def test_set_blindness_merges_everything(self):
        """Counts are invisible to reads: r_ab (two rim-writers) and r_c
        (one) collapse in the SET model, so even c loses its uniqueness --
        the wheel is itself a bounded-fair-S < Q separation witness."""
        system = System(
            bespoke_network(), None, InstructionSet.S, ScheduleClass.BOUNDED_FAIR
        )
        theta = similarity_labeling(system, model=EnvironmentModel.SET)
        assert theta["a"] == theta["b"] == theta["c"]
        assert not decide_selection(system).possible

    def test_wheel_is_a_bfs_q_witness(self):
        from repro.core import verify_separation

        witness = verify_separation(
            "bounded-fair-S", "Q", bespoke_network(), None, "wheel"
        )
        assert witness.valid

    def test_marked_wheel_solvable_in_bfs(self):
        system = System(
            bespoke_network(), {"c": 1}, InstructionSet.S, ScheduleClass.BOUNDED_FAIR
        )
        decision = decide_selection(system)
        assert decision.possible
        program = select_program(system)
        verdict = verify_selection_program(system, program, max_steps=120_000)
        assert verdict.all_ok
        assert verdict.winners == ("c",)
