"""Tests for the hand-rolled HTTP and stdio front ends."""

import asyncio
import json

from repro.serve import AnalysisService
from repro.serve.http import HttpFrontend, StreamBuffer, handle_stdio_lines

RING = {"topology": "ring", "size": 4, "marks": []}
WITNESS = {
    "weaker": "Q", "stronger": "L", "max_processors": 2,
    "max_names": 2, "max_variables": 2, "allow_marks": False, "limit": None,
}


async def _http_roundtrip(port, method, path, body=None):
    """One HTTP/1.1 exchange; returns (status, headers, body bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: localhost\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()  # Connection: close delimits the response
    writer.close()
    await writer.wait_closed()
    head, _, rest = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, rest


def _with_frontend(test):
    """Run ``test(port)`` against a live front end on an ephemeral port."""

    async def go():
        service = AnalysisService(batch_window=0)
        frontend = HttpFrontend(service, port=0)
        try:
            _, port = await frontend.start()
            return await test(port)
        finally:
            await frontend.stop()
            await service.stop()

    return asyncio.run(go())


class TestHttpRoutes:
    def test_health(self):
        async def t(port):
            return await _http_roundtrip(port, "GET", "/v1/health")

        status, headers, body = _with_frontend(t)
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert json.loads(body) == {"ok": True}

    def test_stats(self):
        async def t(port):
            return await _http_roundtrip(port, "GET", "/v1/stats")

        status, _, body = _with_frontend(t)
        assert status == 200
        assert json.loads(body)["op"] == "stats"

    def test_analyze_similarity(self):
        async def t(port):
            return await _http_roundtrip(
                port, "POST", "/v1/analyze",
                {"op": "similarity", "scenario": RING},
            )

        status, _, body = _with_frontend(t)
        assert status == 200
        doc = json.loads(body)
        assert doc["op"] == "similarity"
        assert doc["classes"] == [["p0", "p1", "p2", "p3"]]

    def test_unknown_route_404(self):
        async def t(port):
            return await _http_roundtrip(port, "GET", "/nope")

        status, _, body = _with_frontend(t)
        assert status == 404
        assert "no route" in json.loads(body)["error"]

    def test_bad_body_400(self):
        async def t(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            payload = b"this is not json"
            writer.write(
                b"POST /v1/analyze HTTP/1.1\r\n"
                b"Content-Length: %d\r\n\r\n" % len(payload) + payload
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw

        raw = _with_frontend(lambda port: t(port))
        assert b"400" in raw.split(b"\r\n", 1)[0]

    def test_bad_op_is_400_with_error_doc(self):
        async def t(port):
            return await _http_roundtrip(
                port, "POST", "/v1/analyze", {"op": "frobnicate"}
            )

        status, _, body = _with_frontend(t)
        assert status == 400
        assert "unknown op" in json.loads(body)["error"]

    def test_streaming_ndjson(self):
        async def t(port):
            return await _http_roundtrip(
                port, "POST", "/v1/analyze?stream=1",
                {"op": "witness", "spec": WITNESS},
            )

        status, headers, body = _with_frontend(t)
        assert status == 200
        assert headers["content-type"] == "application/x-ndjson"
        docs = [json.loads(line) for line in body.splitlines() if line]
        assert docs[-1]["kind"] == "result"
        assert docs[-1]["op"] == "witness"
        event_kinds = {d["event"]["kind"] for d in docs if d["kind"] == "event"}
        assert event_kinds & {"witness-shard", "witness"}


    def test_deadline_error_is_504(self):
        async def t(port):
            return await _http_roundtrip(
                port, "POST", "/v1/analyze",
                {"op": "witness", "spec": WITNESS, "deadline": 0.001},
            )

        status, _, body = _with_frontend(t)
        assert status == 504
        assert json.loads(body)["error"] == "deadline"


class TestStreamBuffer:
    def test_overflow_drops_and_counts_instead_of_blocking(self):
        async def go():
            buffer = StreamBuffer(limit=3)
            for i in range(10):
                buffer.offer({"i": i})  # never blocks, never raises
            delivered = []

            async def write(doc):
                delivered.append(doc)

            pump = asyncio.ensure_future(buffer.pump(write))
            await buffer.close()
            await pump
            return delivered, buffer.dropped

        delivered, dropped = asyncio.run(go())
        assert [doc["i"] for doc in delivered] == [0, 1, 2]
        assert dropped == 7

    def test_pump_applies_backpressure_not_loss_when_keeping_up(self):
        async def go():
            buffer = StreamBuffer(limit=4)
            delivered = []

            async def write(doc):
                await asyncio.sleep(0)  # a drain-like yield per event
                delivered.append(doc)

            pump = asyncio.ensure_future(buffer.pump(write))
            for i in range(20):
                buffer.offer({"i": i})
                await asyncio.sleep(0.001)  # producer paced at pump speed
            await buffer.close()
            await pump
            return delivered, buffer.dropped

        delivered, dropped = asyncio.run(go())
        assert dropped == 0
        assert [doc["i"] for doc in delivered] == list(range(20))


class _LineFeed:
    """An async line source for handle_stdio_lines."""

    def __init__(self, lines):
        self._lines = list(lines)

    async def readline(self):
        if not self._lines:
            return b""
        return (self._lines.pop(0) + "\n").encode()


class TestStdio:
    def _run(self, lines):
        out = []

        async def go():
            service = AnalysisService(batch_window=0)
            try:
                await handle_stdio_lines(service, _LineFeed(lines), out.append)
            finally:
                await service.stop()

        asyncio.run(go())
        return [json.loads(line) for line in out]

    def test_request_response_with_ids(self):
        docs = self._run([
            json.dumps({"id": 1, "request": {"op": "similarity",
                                             "scenario": RING}}),
            json.dumps({"id": 2, "request": {"op": "stats"}}),
        ])
        by_id = {doc["id"]: doc for doc in docs if doc["kind"] == "result"}
        assert by_id[1]["result"]["op"] == "similarity"
        assert by_id[2]["result"]["op"] == "stats"

    def test_streamed_request_gets_event_lines(self):
        docs = self._run([
            json.dumps({"id": 9, "stream": True,
                        "request": {"op": "witness", "spec": WITNESS}}),
        ])
        kinds = [doc["kind"] for doc in docs]
        assert "event" in kinds and kinds[-1] == "result"
        assert all(doc["id"] == 9 for doc in docs)

    def test_garbage_line_reports_error_and_continues(self):
        docs = self._run([
            "{ not json",
            json.dumps({"id": 3, "request": {"op": "stats"}}),
        ])
        errors = [d for d in docs if "error" in d.get("result", {})]
        oks = [d for d in docs if d.get("id") == 3]
        assert errors and "not JSON" in errors[0]["result"]["error"]
        assert oks and oks[0]["result"]["op"] == "stats"

    def test_crashed_request_does_not_swallow_siblings(self):
        """An exception escaping one request's task must still let the
        sibling's answer through, and the failed id gets an error line
        (the final gather captures exceptions per task)."""

        class Exploding(AnalysisService):
            async def submit(self, request, on_event=None):
                if request.get("op") == "boom":
                    raise RuntimeError("engine exploded (injected)")
                return await super().submit(request, on_event=on_event)

        out = []

        async def go():
            service = Exploding(batch_window=0.05)
            lines = [
                json.dumps({"id": "bad", "request": {"op": "boom"}}),
                json.dumps({"id": "good", "request": {"op": "similarity",
                                                      "scenario": RING}}),
            ]
            try:
                await handle_stdio_lines(service, _LineFeed(lines), out.append)
            finally:
                await service.stop()

        asyncio.run(go())
        docs = [json.loads(line) for line in out]
        by_id = {doc["id"]: doc for doc in docs if doc["kind"] == "result"}
        assert by_id["good"]["result"]["op"] == "similarity"
        assert "exploded" in by_id["bad"]["result"]["error"]
