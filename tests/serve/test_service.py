"""Tests for the coalescing, store-backed analysis service."""

import asyncio

from repro.serve import AnalysisService

RING = {"topology": "ring", "size": 5, "marks": []}
MARKED_RING = {"topology": "ring", "size": 5, "marks": ["p0"]}
WITNESS = {
    "weaker": "Q", "stronger": "L", "max_processors": 2,
    "max_names": 2, "max_variables": 2, "allow_marks": False, "limit": None,
}
EXPLORE = {
    "scenario": {"topology": "ring", "size": 3, "model": "Q"},
    "max_depth": 3, "symmetry": True,
}


def run(coro):
    return asyncio.run(coro)


class TestOps:
    def test_similarity_request(self):
        async def go():
            async with AnalysisService(batch_window=0) as service:
                return await service.submit(
                    {"op": "similarity", "scenario": RING}
                )

        result = run(go())
        assert result["op"] == "similarity"
        assert result["classes"] == [["p0", "p1", "p2", "p3", "p4"]]
        assert result["stats"]["classes"] >= 1

    def test_marked_ring_splits_classes(self):
        async def go():
            async with AnalysisService(batch_window=0) as service:
                return await service.submit(
                    {"op": "similarity", "scenario": MARKED_RING}
                )

        result = run(go())
        assert len(result["classes"]) > 1

    def test_witness_request(self):
        async def go():
            async with AnalysisService(batch_window=0) as service:
                return await service.submit({"op": "witness", "spec": WITNESS})

        result = run(go())
        assert result["op"] == "witness"
        assert result["count"] == len(result["witnesses"]) >= 1
        assert result["cache_misses"] > 0  # cold service really computed

    def test_explore_request(self):
        async def go():
            async with AnalysisService(batch_window=0) as service:
                return await service.submit({"op": "explore", "spec": EXPLORE})

        result = run(go())
        assert result["op"] == "explore"
        assert result["verdict"] in ("certified", "violation")
        assert result["unique_states"] > 0

    def test_stats_op(self):
        async def go():
            async with AnalysisService(batch_window=0) as service:
                await service.submit({"op": "similarity", "scenario": RING})
                return await service.submit({"op": "stats"})

        doc = run(go())
        assert doc["op"] == "stats"
        assert doc["counters"]["requests"] == 2
        assert doc["counters"]["waves"] >= 1
        assert "store" not in doc  # memory-only service


class TestErrors:
    def test_unknown_op(self):
        async def go():
            async with AnalysisService(batch_window=0) as service:
                return await service.submit({"op": "frobnicate"})

        assert "unknown op" in run(go())["error"]

    def test_non_dict_request(self):
        async def go():
            async with AnalysisService(batch_window=0) as service:
                return await service.submit(["not", "a", "dict"])

        assert "JSON object" in run(go())["error"]

    def test_bad_scenario_fails_only_its_own_request(self):
        """A malformed wave-mate must not poison concurrent requests."""

        async def go():
            async with AnalysisService(batch_window=0.05) as service:
                return await asyncio.gather(
                    service.submit({"op": "similarity", "scenario": RING}),
                    service.submit(
                        {"op": "similarity",
                         "scenario": {"topology": "alternating-ring",
                                      "size": 5}}
                    ),
                )

        good, bad = run(go())
        assert good["classes"] == [["p0", "p1", "p2", "p3", "p4"]]
        assert "error" in bad

    def test_witness_without_spec(self):
        async def go():
            async with AnalysisService(batch_window=0) as service:
                return await service.submit({"op": "witness"})

        assert "spec" in run(go())["error"]


class TestCoalescing:
    def test_identical_requests_share_one_job(self):
        async def go():
            async with AnalysisService(batch_window=0.05) as service:
                results = await asyncio.gather(
                    *(service.submit({"op": "similarity", "scenario": RING})
                      for _ in range(4))
                )
                return results, service.stats_doc()

        results, stats = run(go())
        assert all(r == results[0] for r in results)
        assert stats["counters"]["coalesced"] >= 1
        assert stats["counters"]["jobs"] < stats["counters"]["requests"]

    def test_mixed_ops_all_answered(self):
        async def go():
            async with AnalysisService(batch_window=0.02) as service:
                return await asyncio.gather(
                    service.submit({"op": "similarity", "scenario": RING}),
                    service.submit({"op": "witness", "spec": WITNESS}),
                    service.submit({"op": "explore", "spec": EXPLORE}),
                )

        sim, wit, exp = run(go())
        assert sim["op"] == "similarity"
        assert wit["op"] == "witness"
        assert exp["op"] == "explore"


class TestStoreBacking:
    def test_warm_service_replays_witness_with_zero_misses(self, tmp_path):
        """The tentpole acceptance: a second service over the same store
        answers a previously-served sweep from disk alone."""
        root = str(tmp_path / "store")

        async def serve_once():
            async with AnalysisService(store_dir=root, batch_window=0) as svc:
                return await svc.submit({"op": "witness", "spec": WITNESS})

        cold = run(serve_once())
        assert cold["cache_misses"] > 0
        warm = run(serve_once())
        assert warm["cache_misses"] == 0
        assert warm["witnesses"] == cold["witnesses"]

    def test_similarity_summary_served_from_store(self, tmp_path):
        root = str(tmp_path / "store")

        async def serve_once():
            async with AnalysisService(store_dir=root, batch_window=0) as svc:
                result = await svc.submit(
                    {"op": "similarity", "scenario": MARKED_RING}
                )
                return result, svc.stats_doc()

        cold, cold_stats = run(serve_once())
        assert cold_stats["counters"]["similarity_summary_hits"] == 0
        warm, warm_stats = run(serve_once())
        assert warm_stats["counters"]["similarity_summary_hits"] == 1
        assert warm_stats["similarity_cache"]["misses"] == 0  # never computed
        assert warm["classes"] == cold["classes"]

    def test_explore_orbit_memo_round_trips(self, tmp_path):
        root = str(tmp_path / "store")

        async def serve_once():
            async with AnalysisService(store_dir=root, batch_window=0) as svc:
                return await svc.submit({"op": "explore", "spec": EXPLORE})

        cold = run(serve_once())
        warm = run(serve_once())
        assert warm["verdict"] == cold["verdict"]
        assert warm["unique_states"] == cold["unique_states"]
        from repro.store import ContentStore, NS_ORBITS

        with ContentStore(root) as store:
            assert store.count(NS_ORBITS) == 1


class TestDeadlines:
    def test_deadline_exceeded_returns_error(self):
        async def go():
            async with AnalysisService(batch_window=0.05) as service:
                return await service.submit(
                    {"op": "explore", "spec": EXPLORE, "deadline": 0.001}
                )

        result = run(go())
        assert result == {
            "error": "deadline", "op": "explore", "deadline_s": 0.001,
        }

    def test_timed_out_request_never_poisons_wave_mates(self):
        async def go():
            async with AnalysisService(batch_window=0.05) as service:
                tight, mate = await asyncio.gather(
                    service.submit(
                        {"op": "explore", "spec": EXPLORE, "deadline": 0.001}
                    ),
                    service.submit(
                        {"op": "explore", "spec": dict(EXPLORE, max_depth=2)}
                    ),
                )
                return tight, mate, service.stats_doc()

        tight, mate, stats = run(go())
        assert tight["error"] == "deadline"
        assert mate["verdict"] in ("certified", "violation")
        assert stats["counters"]["deadline_errors"] == 1

    def test_generous_deadline_answers_normally(self):
        async def go():
            async with AnalysisService(batch_window=0) as service:
                return await service.submit(
                    {"op": "similarity", "scenario": RING, "deadline": 60}
                )

        result = run(go())
        assert result["classes"] == [["p0", "p1", "p2", "p3", "p4"]]

    def test_default_deadline_applies_without_request_field(self):
        async def go():
            async with AnalysisService(
                batch_window=0.05, default_deadline=0.001
            ) as service:
                return await service.submit({"op": "explore", "spec": EXPLORE})

        assert run(go())["error"] == "deadline"

    def test_bad_deadline_rejected(self):
        async def go():
            async with AnalysisService(batch_window=0) as service:
                return await asyncio.gather(
                    service.submit({"op": "similarity", "scenario": RING,
                                    "deadline": -1}),
                    service.submit({"op": "similarity", "scenario": RING,
                                    "deadline": "soon"}),
                )

        for result in run(go()):
            assert "deadline must be a positive number" in result["error"]

    def test_deadline_differing_requests_still_coalesce(self):
        """The deadline field is stripped before keying, so requests
        differing only in deadline share one job."""

        async def go():
            async with AnalysisService(batch_window=0.05) as service:
                results = await asyncio.gather(
                    service.submit({"op": "similarity", "scenario": RING,
                                    "deadline": 30}),
                    service.submit({"op": "similarity", "scenario": RING,
                                    "deadline": 60}),
                    service.submit({"op": "similarity", "scenario": RING}),
                )
                return results, service.stats_doc()

        results, stats = run(go())
        assert all(r == results[0] for r in results)
        assert stats["counters"]["coalesced"] == 2


class TestGracefulShutdown:
    def test_drain_answers_queued_requests_and_flushes(self, tmp_path):
        root = str(tmp_path / "store")

        async def go():
            service = AnalysisService(store_dir=root, batch_window=0.1)
            await service.start()
            pending = [
                asyncio.ensure_future(
                    service.submit({"op": "similarity", "scenario": RING})
                ),
                asyncio.ensure_future(
                    service.submit({"op": "witness", "spec": WITNESS})
                ),
            ]
            await asyncio.sleep(0)  # let the submits enqueue
            await service.stop()  # drain: both must be answered
            return await asyncio.gather(*pending)

        sim, wit = run(go())
        assert sim["op"] == "similarity"
        assert wit["op"] == "witness"
        # The drain flushed the store before returning.
        from repro.store import ContentStore, NS_SIMILARITY

        with ContentStore(root) as store:
            assert store.count(NS_SIMILARITY) == 1

    def test_submissions_during_drain_are_rejected(self):
        async def go():
            service = AnalysisService(batch_window=0.1)
            await service.start()
            queued = asyncio.ensure_future(
                service.submit({"op": "similarity", "scenario": RING})
            )
            await asyncio.sleep(0)
            stopper = asyncio.ensure_future(service.stop())
            await asyncio.sleep(0)  # stop() is now draining
            late = await service.submit(
                {"op": "similarity", "scenario": MARKED_RING}
            )
            await stopper
            return await queued, late, service.stats_doc()

        answered, late, stats = run(go())
        assert answered["op"] == "similarity"
        assert late == {"error": "service is shutting down"}
        assert stats["counters"]["rejected"] == 1

    def test_service_restarts_after_drain(self):
        async def go():
            service = AnalysisService(batch_window=0)
            await service.start()
            await service.submit({"op": "similarity", "scenario": RING})
            await service.stop()
            # A fresh submit restarts the loops transparently.
            result = await service.submit(
                {"op": "similarity", "scenario": RING}
            )
            await service.stop()
            return result

        assert run(go())["op"] == "similarity"


class TestDegradedMode:
    @staticmethod
    def _sabotage(service):
        def refuse(namespace, digest, key, value):
            raise OSError(28, "No space left on device (injected)")

        service.store._write = refuse

    def test_unwritable_store_degrades_but_keeps_serving(self, tmp_path):
        from repro.obs import ServeDegraded

        degraded_events = []

        class Sink:
            def on_event(self, event):
                if isinstance(event, ServeDegraded):
                    degraded_events.append(event)

        async def go():
            async with AnalysisService(
                store_dir=str(tmp_path / "store"), batch_window=0
            ) as service:
                service.hub.attach(Sink())
                self._sabotage(service)
                first = await service.submit(
                    {"op": "similarity", "scenario": RING}
                )
                stats = service.stats_doc()
                second = await service.submit(
                    {"op": "similarity", "scenario": MARKED_RING}
                )
                return first, stats, second

        first, stats, second = run(go())
        assert first["classes"] == [["p0", "p1", "p2", "p3", "p4"]]
        assert stats["store"] == "degraded"
        assert "injected" in stats["store_degraded_reason"]
        assert len(second["classes"]) > 1  # still answering, memory-only
        assert len(degraded_events) == 1

    def test_degraded_witness_job_retries_memory_only(self, tmp_path):
        async def go():
            async with AnalysisService(
                store_dir=str(tmp_path / "store"), batch_window=0,
                # Tiny threshold: the DecisionCache's write-through put
                # auto-flushes mid-job, failing inside the sweep.
                store_max_bytes=None,
            ) as service:
                service.store.flush_every = 1
                self._sabotage(service)
                result = await service.submit(
                    {"op": "witness", "spec": WITNESS}
                )
                return result, service.stats_doc()

        result, stats = run(go())
        assert result["op"] == "witness"
        assert result["count"] >= 1
        assert stats["store"] == "degraded"

    def test_degraded_service_survives_its_own_stop(self, tmp_path):
        async def go():
            service = AnalysisService(
                store_dir=str(tmp_path / "store"), batch_window=0
            )
            await service.start()
            self._sabotage(service)
            await service.submit({"op": "similarity", "scenario": RING})
            await service.stop()  # the final flush must not raise
            return service.stats_doc()

        assert run(go())["store"] == "degraded"


class TestEventStreaming:
    def test_witness_events_stream_while_job_runs(self):
        events = []

        async def go():
            async with AnalysisService(batch_window=0) as service:
                return await service.submit(
                    {"op": "witness", "spec": WITNESS},
                    on_event=events.append,
                )

        result = run(go())
        assert result["op"] == "witness"
        kinds = {doc.get("kind") for doc in events}
        assert kinds & {"witness-shard", "witness"}

    def test_unsubscribed_peer_sees_no_events(self):
        """Only the subscriber's callback fires, even in a shared wave."""
        mine, theirs = [], []

        async def go():
            async with AnalysisService(batch_window=0.05) as service:
                await asyncio.gather(
                    service.submit({"op": "explore", "spec": EXPLORE},
                                   on_event=mine.append),
                    service.submit({"op": "explore",
                                    "spec": dict(EXPLORE, max_depth=2)}),
                )

        run(go())
        assert theirs == []
