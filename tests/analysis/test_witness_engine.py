"""Tests for the sharded witness-sweep engine.

The load-bearing property is *agreement*: on any worker count, with or
without checkpoints, warm or cold cache, the engine must return the
exact witness list of the serial reference loop -- same systems, same
order -- and that list must be byte-identical across ``PYTHONHASHSEED``
values.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import find_witnesses
from repro.analysis.witness_engine import (
    DecisionCache,
    SweepSpec,
    WitnessRecord,
    _iter_shard_records,
    run_sweep,
    shard_plan,
)
from repro.core.system import InstructionSet, ScheduleClass
from repro.exceptions import WitnessSearchError
from repro.obs import EventHub, RingBufferSink

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: Small bounds that keep a full sweep under a second.
SMALL = dict(max_processors=2, max_names=2, max_variables=3)


def descriptions(result):
    return [w.describe() for w in result.witnesses]


class TestSweepSpec:
    def test_unknown_label_rejected(self):
        with pytest.raises(WitnessSearchError, match="unknown model label"):
            SweepSpec("Q", "nope")

    def test_json_roundtrip(self):
        spec = SweepSpec("Q", "L", allow_marks=True, limit=3)
        assert SweepSpec.from_json(spec.to_json()) == spec


class TestWitnessRecord:
    def test_json_roundtrip(self):
        record = WitnessRecord(2, 1, (0, 1), mark="v0")
        assert WitnessRecord.from_json(record.to_json()) == record

    def test_rebuilds_marked_variable_system(self):
        record = WitnessRecord(2, 1, (0, 0), mark="v0")
        system = record.system(InstructionSet.Q, ScheduleClass.FAIR)
        assert system.state0("v0") == 1
        assert all(system.state0(p) == 0 for p in system.processors)


class TestShardPlan:
    def test_partitions_enumeration_exactly(self):
        """Every candidate record appears in exactly one shard."""
        spec = SweepSpec("Q", "L", **SMALL)
        counts = {}
        for shard in shard_plan(spec):
            for record in _iter_shard_records(spec, shard):
                counts[record] = counts.get(record, 0) + 1
        assert counts
        assert all(count == 1 for count in counts.values())

    def test_plan_is_spec_deterministic(self):
        spec = SweepSpec("Q", "L", **SMALL)
        assert shard_plan(spec) == shard_plan(SweepSpec("Q", "L", **SMALL))


class TestAgreement:
    def test_sharded_matches_serial(self):
        spec = SweepSpec("Q", "L", **SMALL)
        serial = run_sweep(spec, workers=0)
        sharded = run_sweep(spec, workers=2)
        assert serial.records == sharded.records
        assert descriptions(serial) == descriptions(sharded)
        assert sharded.workers == 2

    def test_wrapper_identical_to_engine(self):
        wrapper = find_witnesses("Q", "L", max_processors=2, limit=10**9)
        engine = run_sweep(SweepSpec("Q", "L", max_processors=2), workers=2)
        assert [w.describe() for w in wrapper] == descriptions(engine)

    def test_limit_prefixes_the_unlimited_list(self):
        spec_all = SweepSpec("Q", "L", **SMALL)
        spec_one = SweepSpec("Q", "L", limit=1, **SMALL)
        full = run_sweep(spec_all, workers=0)
        first = run_sweep(spec_one, workers=0)
        assert first.records == full.records[:1]

    @settings(max_examples=5, deadline=None)
    @given(
        n_procs=st.integers(min_value=1, max_value=2),
        n_names=st.integers(min_value=1, max_value=2),
        n_vars=st.integers(min_value=1, max_value=3),
        allow_marks=st.booleans(),
        pair=st.sampled_from([("Q", "L"), ("bounded-fair-S", "Q")]),
        limit=st.sampled_from([None, 1, 3]),
    )
    def test_randomized_bounds_agree(
        self, n_procs, n_names, n_vars, allow_marks, pair, limit
    ):
        spec = SweepSpec(
            pair[0],
            pair[1],
            max_processors=n_procs,
            max_names=n_names,
            max_variables=n_vars,
            allow_marks=allow_marks,
            limit=limit,
        )
        serial = run_sweep(spec, workers=0)
        sharded = run_sweep(spec, workers=2)
        assert serial.records == sharded.records
        assert descriptions(serial) == descriptions(sharded)
        if limit is not None:
            assert len(serial.records) <= limit


class TestDecisionCache:
    def test_warm_cache_decides_without_misses(self):
        spec = SweepSpec("Q", "L", max_processors=2, max_names=1)
        cache = DecisionCache()
        cold = run_sweep(spec, workers=0, cache=cache)
        assert cold.stats.cache_misses > 0
        warm = run_sweep(spec, workers=0, cache=cache)
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hits > 0
        assert warm.records == cold.records

    def test_snapshot_merge_roundtrip(self):
        spec = SweepSpec("Q", "L", max_processors=2, max_names=1)
        cache = DecisionCache()
        run_sweep(spec, workers=0, cache=cache)
        other = DecisionCache()
        other.merge(cache.snapshot())
        assert other.snapshot() == cache.snapshot()

    def test_cache_shared_across_model_pairs(self):
        """The weaker-model decisions of a Q<L sweep are reusable as the
        stronger-model decisions of a BFS<Q sweep over the same bounds."""
        cache = DecisionCache()
        run_sweep(SweepSpec("Q", "L", max_processors=2, max_names=1), workers=0, cache=cache)
        second = run_sweep(
            SweepSpec("bounded-fair-S", "Q", max_processors=2, max_names=1),
            workers=0,
            cache=cache,
        )
        assert second.stats.cache_hits > 0


class TestCheckpoint:
    def test_full_resume_skips_every_shard(self, tmp_path):
        spec = SweepSpec("Q", "L", **SMALL)
        ck = str(tmp_path / "sweep.jsonl")
        first = run_sweep(spec, workers=0, checkpoint=ck)
        assert first.resumed_shards == 0
        second = run_sweep(spec, workers=0, checkpoint=ck)
        assert second.resumed_shards == first.shards
        assert second.records == first.records
        assert second.stats.to_json() == first.stats.to_json()
        assert second.elapsed < first.elapsed

    def test_partial_resume_completes_the_sweep(self, tmp_path):
        spec = SweepSpec("Q", "L", **SMALL)
        full_ck = str(tmp_path / "full.jsonl")
        full = run_sweep(spec, workers=0, checkpoint=full_ck)
        with open(full_ck) as fh:
            lines = fh.readlines()
        partial_ck = str(tmp_path / "partial.jsonl")
        with open(partial_ck, "w") as fh:
            fh.writelines(lines[:4])  # meta + first three shards
        resumed = run_sweep(spec, workers=0, checkpoint=partial_ck)
        assert resumed.resumed_shards == 3
        assert resumed.records == full.records
        # The resumed run appended the remaining shards: a further resume
        # re-runs nothing.
        third = run_sweep(spec, workers=0, checkpoint=partial_ck)
        assert third.resumed_shards == third.shards

    def test_sharded_run_resumes_serial_checkpoint(self, tmp_path):
        spec = SweepSpec("Q", "L", **SMALL)
        ck = str(tmp_path / "sweep.jsonl")
        serial = run_sweep(spec, workers=0, checkpoint=ck)
        sharded = run_sweep(spec, workers=2, checkpoint=ck)
        assert sharded.resumed_shards == serial.shards
        assert sharded.records == serial.records

    def test_spec_mismatch_rejected(self, tmp_path):
        ck = str(tmp_path / "sweep.jsonl")
        run_sweep(SweepSpec("Q", "L", max_processors=1), workers=0, checkpoint=ck)
        with pytest.raises(WitnessSearchError, match="different sweep spec"):
            run_sweep(SweepSpec("Q", "L", max_processors=2), workers=0, checkpoint=ck)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        ck.write_text("not json\n")
        with pytest.raises(WitnessSearchError, match="not valid JSON"):
            run_sweep(SweepSpec("Q", "L", max_processors=1), workers=0, checkpoint=str(ck))


class TestEvents:
    def test_progress_and_witness_events(self):
        hub = EventHub()
        sink = hub.attach(RingBufferSink())
        spec = SweepSpec("Q", "L", max_processors=2, max_names=1)
        result = run_sweep(spec, workers=0, hub=hub)
        progress = sink.events(kind="witness-shard")
        found = sink.events(kind="witness")
        assert len(progress) == result.shards
        assert not any(e.resumed for e in progress)
        assert sum(e.enumerated for e in progress) == result.stats.enumerated
        assert len(found) == len(result.witnesses)
        assert [e.index for e in found] == list(range(len(found)))
        assert all(e.weaker == "Q" and e.stronger == "L" for e in found)

    def test_resumed_shards_emit_resumed_events(self, tmp_path):
        spec = SweepSpec("Q", "L", max_processors=2, max_names=1)
        ck = str(tmp_path / "sweep.jsonl")
        run_sweep(spec, workers=0, checkpoint=ck)
        hub = EventHub()
        sink = hub.attach(RingBufferSink())
        result = run_sweep(spec, workers=0, checkpoint=ck, hub=hub)
        progress = sink.events(kind="witness-shard")
        assert len(progress) == result.shards
        assert all(e.resumed for e in progress)


class TestHashSeedDeterminism:
    SNIPPET = (
        "from repro.analysis import find_witnesses\n"
        "ws = find_witnesses('Q', 'L', max_processors=2, allow_marks=True,"
        " limit=100)\n"
        "print('\\n'.join(w.describe() for w in ws))\n"
    )

    def _run(self, seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(seed)
        env["PYTHONPATH"] = SRC
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            env=env,
            check=True,
            capture_output=True,
            text=True,
        )
        return proc.stdout

    def test_witness_list_identical_across_hash_seeds(self):
        out0 = self._run(0)
        out42 = self._run(42)
        assert out0 == out42
        assert out0.strip()  # the sweep actually found witnesses
