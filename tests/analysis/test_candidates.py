"""The candidate programs behave as advertised (before the adversary)."""

import pytest

from repro.analysis import candidate_zoo, refute_selection, sticky_beacon, tournament
from repro.core import InstructionSet, ScheduleClass, System
from repro.runtime import Executor, ReplayScheduler, RoundRobinScheduler
from repro.topologies import figure1_network, figure1_system


def solo_system():
    """One processor alone: every candidate should happily select."""
    from repro.core import Network

    net = Network(("n",), {"p": {"n": "v"}})
    return System(net, None, InstructionSet.S, ScheduleClass.GENERAL)


class TestCandidatesSucceedAlone:
    @pytest.mark.parametrize("name_builder", candidate_zoo("n"), ids=lambda nb: nb[0])
    def test_single_processor_selects_itself(self, name_builder):
        name, builder = name_builder
        system = solo_system()
        executor = Executor(system, builder(), RoundRobinScheduler(system.processors))
        executor.run(50)
        assert executor.selected_processors() == ("p",)


class TestCandidatesFallTogether:
    @pytest.mark.parametrize("name_builder", candidate_zoo("n"), ids=lambda nb: nb[0])
    def test_all_refuted_on_the_pair(self, name_builder):
        _name, builder = name_builder
        system = figure1_system(InstructionSet.S, ScheduleClass.GENERAL)
        refutation = refute_selection(system, builder())
        assert refutation is not None


class TestTournamentMechanics:
    def test_collision_defers(self):
        system = figure1_system(InstructionSet.S, ScheduleClass.GENERAL)
        program = tournament("n", rounds=3)
        # p writes round 0, q writes round 0 (same value!), p reads ->
        # sees its own value -> no collision detected: the blindness the
        # adversary exploits.
        executor = Executor(
            system, program, ReplayScheduler(("p", "q", "p"), RoundRobinScheduler(system.processors))
        )
        executor.run(3)
        assert executor.local["p"][0] == "write"  # advanced, undisturbed

    def test_beacon_survives_twin_writes(self):
        system = figure1_system(InstructionSet.S, ScheduleClass.GENERAL)
        program = sticky_beacon("n")
        executor = Executor(
            system, program,
            ReplayScheduler(("p", "q", "p", "q", "p", "q"), RoundRobinScheduler(system.processors)),
        )
        executor.run(6)
        # Both see the (identical) beacon surviving: both select.
        assert len(executor.selected_processors()) == 2
