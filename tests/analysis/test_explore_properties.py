"""Property-based agreement between the explorer and the trace analyses.

The bounded explorer, the Theorem-4 ``lockstep_holds`` checker, and the
cycle-based ``states_equal_infinitely_often`` analysis look at the same
executions through different machinery.  On randomized small systems
their verdicts must agree:

* a restricted single-schedule exploration of the class round-robin
  schedule fires its lockstep invariant exactly when ``lockstep_holds``
  fails over the same rounds (Q programs never halt, so the explorer's
  balanced points are precisely the round boundaries);
* the ``uniform`` probe along a round-robin walk hits at a cycle sample
  if and only if ``states_equal_infinitely_often`` answers True;
* exact-configuration dedup, Θ-orbit dedup, and prefix-sharded runs all
  return the same verdict and the same counterexample.
"""

from dataclasses import replace

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.explore import ExploreSpec, run_explore
from repro.exceptions import ExecutionError
from repro.obs import build_scenario
from repro.runtime import (
    ClassRoundRobinScheduler,
    Executor,
    RoundRobinScheduler,
    lockstep_holds,
    run_until_cycle,
    states_equal_infinitely_often,
)

SETTINGS = settings(max_examples=15, deadline=None)


@st.composite
def scenarios(draw, topologies=("ring", "path", "star"), max_size=4, marks=True):
    return {
        "topology": draw(st.sampled_from(topologies)),
        "size": draw(st.integers(min_value=2, max_value=max_size)),
        "model": "Q",
        "program": "random",
        "program_seed": draw(st.integers(min_value=0, max_value=50)),
        "marks": draw(st.sampled_from([[], ["p0"]])) if marks else [],
    }


def round_of(scheduler, n):
    scheduler.reset()
    return tuple(scheduler.next_processor(i, None) for i in range(n))


@SETTINGS
@given(scenarios(max_size=3), st.integers(min_value=0, max_value=50))
def test_dedup_variants_agree(scenario, seed):
    """Θ-reduced, unreduced, and sharded runs: one verdict, one witness."""
    spec = ExploreSpec(
        scenario={**scenario, "program_seed": seed},
        max_depth=4,
        split_depth=0,
    )
    reduced = run_explore(spec, workers=0)
    unreduced = run_explore(replace(spec, symmetry=False), workers=0)
    sharded = run_explore(replace(spec, split_depth=2), workers=0)
    assert reduced.verdict == unreduced.verdict == sharded.verdict
    assert reduced.violation == unreduced.violation == sharded.violation
    assert reduced.unique_states <= unreduced.unique_states


@SETTINGS
@given(scenarios(topologies=("ring",), marks=False))
def test_theorem4_certified_by_explorer(scenario):
    """The lockstep invariant never fires on single-class families.

    Under ``k``-bounded schedules with ``k`` equal to the processor
    count, every window of ``k`` steps is a permutation round.  When all
    processors form ONE Θ-class (the unmarked ring), every such round is
    a class round robin in some member order, so Theorem 4 applies to
    every balanced point and the sweep over *all* those schedules must
    certify — a strictly stronger empirical check than one
    class-round-robin run.  (This genuinely fails on multi-class
    systems, where a permutation round may wedge a *dissimilar*
    processor between two class members and split their observations;
    see ``test_permutation_rounds_can_split_interleaved_classes``.)
    """
    from repro.core import processor_similarity_classes, similarity_labeling

    bundle = build_scenario(scenario)
    n = len(bundle.system.processors)
    result = run_explore(
        ExploreSpec(
            scenario=scenario,
            max_depth=min(2 * n, 6),
            fairness="k-bounded",
            k=n,
            invariants=("lockstep",),
            check_deadlock=False,
            split_depth=0,
        ),
        workers=0,
    )
    assert result.verdict == "certified"

    theta = similarity_labeling(bundle.system)
    classes = [sorted(b, key=repr) for b in processor_similarity_classes(bundle.system)]
    ex = Executor(
        bundle.system,
        bundle.program,
        ClassRoundRobinScheduler(bundle.system.processors, theta),
    )
    assert lockstep_holds(ex, classes, rounds=6)


def test_permutation_rounds_can_split_interleaved_classes():
    """The boundary of the sweep's lockstep claim, pinned down.

    Theorem 4 promises lockstep under *class* round robin — similar
    processors running back to back.  It does NOT extend to arbitrary
    permutation rounds: on a star with the hub-neighbor ``p0`` marked,
    the round ``p1 p0 p2`` runs the dissimilar ``p0`` *between* the
    class members ``{p1, p2}``, so ``p1`` observes the shared variable
    before ``p0``'s post and ``p2`` after it, and the class splits at a
    balanced point.  The explorer finds exactly such an interleaving —
    while the class-round-robin run of the same system stays lockstep.
    """
    from repro.core import processor_similarity_classes, similarity_labeling

    scenario = {
        "topology": "star",
        "size": 3,
        "model": "Q",
        "program": "random",
        "program_seed": 1,
        "marks": ["p0"],
    }
    result = run_explore(
        ExploreSpec(
            scenario=scenario,
            max_depth=6,
            fairness="k-bounded",
            k=3,
            invariants=("lockstep",),
            check_deadlock=False,
            split_depth=0,
        ),
        workers=0,
    )
    assert result.violation is not None
    assert result.violation.invariant == "lockstep"
    # ... yet Theorem 4's own schedule keeps the classes in lockstep:
    bundle = build_scenario(scenario)
    theta = similarity_labeling(bundle.system)
    classes = [
        sorted(b, key=repr)
        for b in processor_similarity_classes(bundle.system)
    ]
    ex = Executor(
        bundle.system,
        bundle.program,
        ClassRoundRobinScheduler(bundle.system.processors, theta),
    )
    assert lockstep_holds(ex, classes, rounds=6)


@SETTINGS
@given(scenarios(), st.integers(min_value=1, max_value=3))
def test_restricted_walk_agrees_with_lockstep_holds(scenario, rounds):
    """Bidirectional agreement on an *arbitrary* (possibly wrong) partition.

    Theorem 4 makes the true-Θ case all-positive, so to exercise both
    verdicts we hand the same deliberately coarse partition (all
    processors in one class) to ``lockstep_holds`` and to an extra
    explorer invariant, and walk the same class-round-robin schedule with
    ``restrict``.  Q programs never halt, so the explorer's balanced
    points are exactly the round boundaries the trace checker samples —
    the two verdicts must coincide.
    """
    from repro.core import similarity_labeling

    bundle = build_scenario(scenario)
    system = bundle.system
    procs = list(system.processors)
    theta = similarity_labeling(system)
    schedule = round_of(
        ClassRoundRobinScheduler(procs, theta), len(procs)
    )
    bogus = [sorted(procs, key=repr)]

    def coarse_lockstep(executor, counts):
        if counts is None or len(set(counts)) != 1:
            return None
        states = {executor.local[p] for p in bogus[0]}
        if len(states) > 1:
            return "coarse class split"
        return None

    coarse_lockstep.needs_counts = True

    result = run_explore(
        ExploreSpec(
            scenario=scenario,
            max_depth=len(schedule) * rounds,
            restrict=schedule * rounds,
            check_deadlock=False,
            split_depth=0,
        ),
        workers=0,
        extra_invariants=[coarse_lockstep],
    )

    ex = Executor(
        system, bundle.program, ClassRoundRobinScheduler(procs, theta)
    )
    expected = lockstep_holds(ex, bogus, rounds=rounds)
    assert (result.violation is None) == expected


@SETTINGS
@given(scenarios(topologies=("ring", "path"), max_size=3))
def test_uniform_probe_agrees_with_states_equal_infinitely_often(scenario):
    bundle = build_scenario(scenario)
    system = bundle.system
    procs = list(system.processors)
    n = len(procs)

    def factory():
        return Executor(
            system, bundle.program, RoundRobinScheduler(procs)
        )

    try:
        info = run_until_cycle(factory(), stride=n, max_samples=64)
    except ExecutionError:
        assume(False)  # lasso too long for a bounded exploration
    depth = (info.prefix_length + info.cycle_length) * n
    assume(depth <= 36)
    expected = states_equal_infinitely_often(factory, procs, stride=n)

    schedule = tuple(procs[i % n] for i in range(depth))
    result = run_explore(
        ExploreSpec(
            scenario=scenario,
            max_depth=depth,
            restrict=schedule,
            probes=("uniform",),
            check_deadlock=False,
            split_depth=0,
            probe_limit=4096,
        ),
        workers=0,
    )
    # Cycle samples live at stride boundaries from the prefix on; the
    # walk covers exactly one full lasso, so a hit at such a depth is a
    # configuration the infinite execution revisits forever.
    cycle_hits = [
        hit
        for hit in result.probe_hits
        if hit["depth"] % n == 0 and hit["depth"] >= info.prefix_length * n
    ]
    assert bool(cycle_hits) == expected
