"""Unit tests for parameterized verification with cutoff detection."""

import dataclasses
from dataclasses import replace

import pytest

from repro.analysis.parametric import (
    OMEGA_DEFAULT,
    STRUCTURE_DEPTH_DEFAULT,
    StateAbstraction,
    abstract_value,
    class_structure,
    compute_labeling_schema,
    detect_cutoff,
    eval_depth,
    member_explore_spec,
    property_spec,
    run_parametric,
    verify_cutoff,
)
from repro.analysis.explore import ExploreSpec, explore_with_profiles
from repro.core import parametric_family
from repro.exceptions import ExploreError, ParametricError


class TestEvalDepth:
    @pytest.mark.parametrize(
        "rule,n,expected",
        [("2n", 5, 10), ("2n+2", 4, 10), ("n", 7, 7), ("8", 3, 8),
         ("n-1", 4, 3), ("3n + 1", 2, 7)],
    )
    def test_linear_rules(self, rule, n, expected):
        assert eval_depth(rule, n) == expected

    @pytest.mark.parametrize("rule", ["", "n^2", "2x", "+", "nn", "2n+"])
    def test_bad_rules_rejected(self, rule):
        with pytest.raises(ParametricError):
            eval_depth(rule, 4)

    def test_nonpositive_depth_rejected(self):
        with pytest.raises(ParametricError):
            eval_depth("n-5", 3)


class TestAbstractValue:
    def test_small_ints_pass_through(self):
        assert abstract_value(1, 2) == 1
        assert abstract_value(0, 2) == 0
        assert abstract_value(-1, 2) == -1

    def test_large_ints_collapse_keeping_sign(self):
        assert abstract_value(7, 2) == ("ω", True)
        assert abstract_value(2, 2) == ("ω", True)
        assert abstract_value(-9, 2) == ("ω", False)

    def test_bools_are_not_ints_here(self):
        assert abstract_value(True, 1) is True

    def test_containers_recurse(self):
        assert abstract_value((0, (5,)), 2) == (0, (("ω", True),))
        assert abstract_value(frozenset([9]), 2) == frozenset([("ω", True)])

    def test_dataclasses_recurse(self):
        @dataclasses.dataclass(frozen=True)
        class Local:
            stage: str
            meals: int

        assert abstract_value(Local("eat", 40), 3) == Local("eat", ("ω", True))

    def test_strings_untouched(self):
        assert abstract_value("wait-left", 2) == "wait-left"


class TestClassStructure:
    def test_unmarked_ring_has_two_colors(self):
        fam = parametric_family("ring")
        _, colors = class_structure(fam.instantiate(5))
        # one processor class + one variable class
        assert len(colors) == 2

    def test_colors_stabilize_across_sizes(self):
        fam = parametric_family("marked-ring")
        _, colors_a = class_structure(fam.instantiate(7))
        _, colors_b = class_structure(fam.instantiate(9))
        # the similarity labelings differ (more distance classes at 9)
        # but the ω-bounded color alphabet does not
        assert colors_a == colors_b

    def test_every_node_indexed(self):
        fam = parametric_family("star")
        system = fam.instantiate(4)
        node_index, colors = class_structure(system)
        assert set(node_index) == set(system.nodes)
        assert set(node_index.values()) <= set(range(len(colors)))


class TestStateAbstraction:
    def test_profiles_stable_across_sizes_at_fixed_depth(self):
        # The stabilization inequality: profile sets at structure depth
        # d are n-invariant once n >= d + ω.
        fam = parametric_family("dp")
        prop = property_spec("deadlock")
        sets = {}
        for n in (4, 5):
            ab = StateAbstraction(fam.instantiate(n), OMEGA_DEFAULT)
            spec = replace(
                member_explore_spec(fam, prop, n),
                max_depth=STRUCTURE_DEPTH_DEFAULT,
            )
            _, profiles = explore_with_profiles(spec, ab.profile)
            sets[n] = frozenset(profiles)
        assert sets[4] == sets[5]

    def test_profiles_differ_below_stabilization(self):
        fam = parametric_family("dp")
        prop = property_spec("deadlock")
        sets = {}
        for n in (2, 4):
            ab = StateAbstraction(fam.instantiate(n), OMEGA_DEFAULT)
            spec = replace(
                member_explore_spec(fam, prop, n),
                max_depth=STRUCTURE_DEPTH_DEFAULT,
            )
            _, profiles = explore_with_profiles(spec, ab.profile)
            sets[n] = frozenset(profiles)
        assert sets[2] != sets[4]


class TestExploreWithProfiles:
    def test_one_profile_per_unique_state(self):
        spec = ExploreSpec(
            scenario={"topology": "ring", "size": 3}, max_depth=3
        )
        seen = []
        result, profiles = explore_with_profiles(spec, lambda ex: seen.append(1))
        assert len(profiles) == result.unique_states

    def test_registered_probes_rejected(self):
        spec = ExploreSpec(
            scenario={"topology": "ring", "size": 3},
            max_depth=3,
            probes=("uniform",),
        )
        with pytest.raises(ExploreError):
            explore_with_profiles(spec, lambda ex: None)

    def test_zero_probe_limit_rejected(self):
        spec = ExploreSpec(
            scenario={"topology": "ring", "size": 3},
            max_depth=3,
            probe_limit=0,
        )
        with pytest.raises(ExploreError):
            explore_with_profiles(spec, lambda ex: None)


class TestPropertySpecs:
    def test_unknown_property(self):
        with pytest.raises(ParametricError, match="unknown property"):
            property_spec("liveness")

    def test_member_spec_shapes(self):
        fam = parametric_family("ring")
        spec = member_explore_spec(fam, property_spec("lockstep"), 4)
        assert spec.fairness == "k-bounded"
        assert spec.k == 4
        assert spec.max_depth == 8
        assert not spec.check_deadlock
        spec = member_explore_spec(fam, property_spec("deadlock"), 4)
        assert spec.fairness == "none"
        assert spec.k is None


class TestDetectCutoff:
    def test_ring_lockstep_certifies(self):
        cert = detect_cutoff("ring", "lockstep")
        assert cert.cutoff == STRUCTURE_DEPTH_DEFAULT + OMEGA_DEFAULT
        assert cert.verdict == "certified"
        assert cert.period == 1 and cert.step == 1
        assert len(cert.stable_fingerprints) == 1
        assert "for all n >= 4" in cert.claim
        assert verify_cutoff(cert) is None

    def test_tampered_fingerprint_fails_verification(self):
        cert = detect_cutoff("ring", "lockstep")
        bad = replace(cert, stable_fingerprints=("0" * 32,))
        message = verify_cutoff(bad, extra_sizes=1)
        assert message is not None and "fingerprint" in message

    def test_tampered_verdict_fails_verification(self):
        cert = detect_cutoff("ring", "lockstep")
        bad = replace(cert, verdict="violation", violation_kind="deadlock")
        message = verify_cutoff(bad, extra_sizes=1)
        assert message is not None and "verdict" in message

    def test_non_uniform_verdict_rejected(self):
        # rings under the random program never deadlock, so expecting
        # the "every member deadlocks" shape must fail fast.
        with pytest.raises(ParametricError, match="does not satisfy"):
            detect_cutoff("ring", "deadlock")

    def test_max_sizes_must_cover_two_periods(self):
        with pytest.raises(ParametricError, match="two periods"):
            detect_cutoff("marked-ring", "deadlock", max_sizes=3)

    def test_records_are_serializable(self):
        import json

        cert = detect_cutoff("ring", "lockstep")
        doc = cert.to_json()
        assert json.loads(json.dumps(doc, sort_keys=True)) == doc
        assert doc["structure_depth"] == STRUCTURE_DEPTH_DEFAULT
        assert [r["size"] for r in doc["records"]] == [2, 3, 4, 5]


class TestDpFamilies:
    def test_dp_deadlocks_for_all_n(self):
        doc = run_parametric("dp", "deadlock")
        cert = doc["certificate"]
        assert cert["verdict"] == "violation"
        assert cert["violation_kind"] == "deadlock"
        assert cert["cutoff"] == 4
        assert doc["verify_cutoff"]["confirmed"], doc["verify_cutoff"]["error"]

    def test_dp_prime_deadlock_free_for_all_even_n(self):
        doc = run_parametric("dp-prime", "deadlock-free", schema=False)
        cert = doc["certificate"]
        assert cert["verdict"] == "certified"
        assert cert["step"] == 2
        assert "mod 2" in cert["claim"]
        assert doc["verify_cutoff"]["confirmed"], doc["verify_cutoff"]["error"]


class TestLabelingSchemas:
    def test_star_schema_constant(self):
        schema = compute_labeling_schema("star")
        assert schema.slope == 0
        assert schema.base_counts == (2,)
        assert schema.predicted_classes(11) == 2

    def test_marked_ring_schema_grows(self):
        schema = compute_labeling_schema("marked-ring")
        assert schema.slope > 0
        # the affine prediction must match the real refinement engine
        n = schema.checked_to + 2 * schema.period
        assert schema.predicted_classes(n) == schema.class_count(n)

    def test_prediction_below_stabilization_rejected(self):
        schema = compute_labeling_schema("marked-ring")
        with pytest.raises(ParametricError):
            schema.predicted_classes(schema.stabilized_at - 1)

    def test_instantiate_matches_engine(self):
        from repro.core.refinement import compute_similarity_labeling

        schema = compute_labeling_schema("ring")
        fam = parametric_family("ring")
        n = schema.stabilized_at + 1
        direct = compute_similarity_labeling(fam.instantiate(n)).labeling
        assert schema.instantiate(n).blocks == direct.blocks
