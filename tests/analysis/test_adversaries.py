"""Theorems survive adaptive adversaries (not just oblivious schedules)."""

import pytest

from repro.algorithms import (
    Algorithm2Program,
    Algorithm4Program,
    LabelTables,
    select_program_l,
)
from repro.analysis import (
    LockContentionAdversary,
    StallLearningAdversary,
    pec_uncertainty,
)
from repro.core import InstructionSet, System, similarity_labeling
from repro.runtime import Executor, run_selection
from repro.topologies import figure1_system, figure2_system, ring


class TestStallLearningAdversary:
    def _converge(self, system, k=None, max_steps=120_000):
        theta = similarity_labeling(system)
        tables = LabelTables.from_labeled_system(system, theta)
        program = Algorithm2Program(tables)
        adversary = StallLearningAdversary(
            system.processors, pec_uncertainty, k=k
        )
        executor = Executor(system, program, adversary)
        for i in range(max_steps):
            executor.step()
            if all(
                Algorithm2Program.is_done(executor.local[p])
                for p in system.processors
            ):
                return i + 1, {
                    p: Algorithm2Program.learned_label(executor.local[p])
                    for p in system.processors
                }, theta
        return None, {}, theta

    def test_figure2_converges_despite_stalling(self):
        steps, learned, theta = self._converge(figure2_system())
        assert steps is not None
        assert learned == {p: theta[p] for p in figure2_system().processors}

    def test_marked_ring_converges(self):
        system = System(ring(5), {"p0": 1}, InstructionSet.Q)
        steps, learned, theta = self._converge(system)
        assert steps is not None
        assert learned == {p: theta[p] for p in system.processors}

    def test_adversary_is_actually_slower_than_round_robin(self):
        from repro.runtime import RoundRobinScheduler

        system = figure2_system()
        theta = similarity_labeling(system)
        tables = LabelTables.from_labeled_system(system, theta)

        def steps_under(scheduler):
            executor = Executor(system, Algorithm2Program(tables), scheduler)
            for i in range(120_000):
                executor.step()
                if all(
                    Algorithm2Program.is_done(executor.local[p])
                    for p in system.processors
                ):
                    return i + 1
            return None

        fair = steps_under(RoundRobinScheduler(system.processors))
        hostile = steps_under(
            StallLearningAdversary(system.processors, pec_uncertainty)
        )
        assert fair is not None and hostile is not None
        assert hostile >= fair  # the adversary cannot help, only hurt

    def test_k_below_n_rejected(self):
        with pytest.raises(ValueError):
            StallLearningAdversary(("a", "b", "c"), pec_uncertainty, k=2)


class TestLockContentionAdversary:
    def test_algorithm4_still_selects_uniquely(self, fig1_l):
        program = select_program_l(fig1_l)
        adversary = LockContentionAdversary(fig1_l.processors)
        run = run_selection(fig1_l, program, adversary, "lock-contention", max_steps=200_000)
        assert run.ok

    def test_star_under_contention(self):
        from repro.topologies import star

        system = System(star(3), None, InstructionSet.L)
        program = select_program_l(system)
        adversary = LockContentionAdversary(system.processors)
        run = run_selection(system, program, adversary, "lock-contention", max_steps=400_000)
        assert run.ok
