"""Checkpoint spec-compare regressions: JSON round-trip normalization.

A checkpoint stores ``spec.to_json()`` serialized to disk, where JSON
turns tuples into lists.  The resume path used to compare the reloaded
document against the in-memory ``spec.to_json()`` with raw ``!=`` — so
any tuple-valued field in the live spec document falsely failed the
"same spec" check and rejected a perfectly valid resume.  Both engines
now normalize each side through a JSON round-trip before comparing.
"""

import json

import pytest

from repro.analysis.explore import ExploreSpec, run_explore
from repro.analysis.witness_engine import SweepSpec, run_sweep
from repro.exceptions import ExploreError

RING3 = {"topology": "ring", "size": 3, "model": "Q", "marks": ["p0"]}


def _tupleized_spec(**overrides):
    """An ExploreSpec whose scenario carries a tuple-valued field.

    The public constructor normalizes ``marks`` to a list, so recreate
    the latent in-memory state (e.g. a spec built from an older pickle
    or a caller passing its own normalized dict) directly: semantically
    identical, but ``to_json()`` round-trips tuple -> list.
    """
    fields = dict(scenario=RING3, max_depth=4, split_depth=2)
    fields.update(overrides)
    spec = ExploreSpec(**fields)
    object.__setattr__(spec, "scenario",
                       {**spec.scenario, "marks": ("p0",)})
    return spec


class TestExploreCheckpointNormalization:
    def test_tuple_valued_spec_field_resumes(self, tmp_path):
        """Regression: raw ``!=`` spec compare rejected this resume."""
        path = str(tmp_path / "explore.ckpt.jsonl")
        first = run_explore(_tupleized_spec(), workers=0, checkpoint=path)

        # The checkpoint's stored spec is the JSON-normalized document...
        with open(path) as fh:
            header = json.loads(fh.readline())
        assert header["spec"]["scenario"]["marks"] == ["p0"]

        # ...and resuming with the tuple-carrying live spec must work.
        resumed = run_explore(_tupleized_spec(), workers=0, checkpoint=path)
        assert resumed.resumed_shards > 0
        assert json.dumps(first.report_doc(), sort_keys=True) == json.dumps(
            resumed.report_doc(), sort_keys=True
        )

    def test_genuinely_different_spec_still_rejected(self, tmp_path):
        """Normalization must not weaken real mismatch detection."""
        path = str(tmp_path / "explore.ckpt.jsonl")
        run_explore(_tupleized_spec(), workers=0, checkpoint=path)
        with pytest.raises(ExploreError):
            run_explore(_tupleized_spec(max_depth=5), workers=0,
                        checkpoint=path)


class TestWitnessCheckpointNormalization:
    def test_resume_across_restart(self, tmp_path):
        """The same audit applies to the witness engine's checkpoint."""
        spec = SweepSpec(weaker="Q", stronger="L", max_processors=2,
                         max_names=2, max_variables=2)
        ck = str(tmp_path / "sweep.ckpt.jsonl")
        first = run_sweep(spec, workers=1, checkpoint=ck)
        # A fresh SweepSpec object (a "restarted process") resumes.
        again = SweepSpec(**json.loads(json.dumps(spec.to_json())))
        second = run_sweep(again, workers=1, checkpoint=ck)
        assert second.resumed_shards == second.shards
        assert [w.describe() for w in first.witnesses] == [
            w.describe() for w in second.witnesses
        ]
