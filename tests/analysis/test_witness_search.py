"""Tests for the automatic separation-witness search."""

import pytest

from repro.analysis import enumerate_networks, find_witnesses, smallest_witness
from repro.core import decide_selection


class TestEnumeration:
    def test_dense_prefix_only(self):
        nets = list(enumerate_networks(1, 1, 3))
        # One processor, one name: only v0 can be used densely.
        assert len(nets) == 1

    def test_two_procs_one_name(self):
        nets = list(enumerate_networks(2, 1, 2))
        # (v0,v0) and (v0,v1); (v1,v0) is a non-dense duplicate... it is
        # dense? assignment (1,0) uses {0,1} densely -> allowed, but
        # isomorphic to (0,1).  Enumeration keeps both; dedup happens in
        # the searcher.
        assert len(nets) >= 2


class TestSearch:
    def test_rediscovers_figure1_for_q_vs_l(self):
        w = smallest_witness("Q", "L")
        assert w is not None
        net = w.system.network
        assert len(net.processors) == 2
        assert len(net.variables) == 1  # exactly the Figure 1 shape

    def test_finds_three_processor_bfs_q_witness(self):
        """Smaller than Figure 2: two writers on one variable, one on
        another, a single name."""
        w = smallest_witness("bounded-fair-S", "Q")
        assert w is not None
        assert len(w.system.network.processors) == 3
        assert len(w.system.names) == 1

    def test_rediscovers_swapped_pair_for_l_vs_l2(self):
        w = smallest_witness("L", "L2")
        assert w is not None
        net = w.system.network
        assert len(net.processors) == 2
        assert len(net.variables) == 2

    def test_witness_actually_separates(self):
        for weaker, stronger in (("Q", "L"), ("bounded-fair-S", "Q")):
            w = smallest_witness(weaker, stronger)
            from repro.core.hierarchy import MODEL_AXIS

            models = {label: (i, s) for label, i, s in MODEL_AXIS}
            wi, ws = models[weaker]
            si, ss = models[stronger]
            weak_sys = w.system.with_instruction_set(wi).with_schedule_class(ws)
            strong_sys = w.system.with_instruction_set(si).with_schedule_class(ss)
            assert not decide_selection(weak_sys).possible
            assert decide_selection(strong_sys).possible

    def test_limit_respected(self):
        found = find_witnesses("Q", "L", limit=3)
        assert 1 <= len(found) <= 3

    def test_describe_is_readable(self):
        w = smallest_witness("Q", "L")
        text = w.describe()
        assert "p0" in text and "->" in text


class TestVariableMarks:
    def test_variable_marked_witness_reachable(self):
        """Regression: ``allow_marks`` used to mark only processors, so a
        witness that needs a marked *variable* was unreachable.  Within
        2 processors / 1 name / 1 variable the marked-variable two-ring
        is a Q<L witness that only exists with variable marks."""
        found = find_witnesses(
            "Q",
            "L",
            max_processors=2,
            max_names=1,
            max_variables=1,
            allow_marks=True,
            limit=10,
        )
        marked_vars = [
            w
            for w in found
            if any(
                w.system.state0(v) != 0 for v in w.system.network.variables
            )
        ]
        assert marked_vars
        assert "marks=['v0']" in marked_vars[0].describe()

    def test_both_node_kinds_enumerated_as_marks(self):
        from repro.analysis.witness_engine import (
            SweepSpec,
            _iter_shard_records,
            shard_plan,
        )

        spec = SweepSpec(
            "Q",
            "L",
            max_processors=2,
            max_names=1,
            max_variables=2,
            allow_marks=True,
        )
        marks = {
            record.mark
            for shard in shard_plan(spec)
            for record in _iter_shard_records(spec, shard)
        }
        assert {None, "p0", "p1", "v0"} <= marks
