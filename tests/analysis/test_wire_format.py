"""Form-key wire format: the ``"b:"`` tag and both legacy shapes.

Cache snapshots and checkpoints serialize byte form-keys as strings.
The untagged format was ambiguous: a *legacy* repr-string key that
happened to be even-length hex (``"abcd"``, ``"00"``, ...) was silently
decoded into a bogus bytes bucket.  The tagged format (``"b:" + hex``)
removes the guesswork; the decoder still accepts both legacy shapes.
"""

import pytest

from repro.analysis.witness_engine import (
    DecisionCache,
    _form_from_wire,
    _form_to_wire,
)
from repro.exceptions import WitnessSearchError


class TestRoundTrip:
    @pytest.mark.parametrize(
        "form", [b"", b"\x00", b"any bytes at all", bytes(range(256))]
    )
    def test_bytes_round_trip_through_the_tag(self, form):
        wire = _form_to_wire(form)
        assert wire.startswith("b:")
        assert _form_from_wire(wire) == form

    def test_malformed_tagged_key_is_an_error(self):
        with pytest.raises(WitnessSearchError, match="not hex"):
            _form_from_wire("b:zz-not-hex")
        with pytest.raises(WitnessSearchError):
            _form_from_wire("b:abc")  # odd length


class TestLegacyShapes:
    def test_bare_even_hex_is_a_first_release_byte_key(self):
        # Untagged even-length hex: what the first byte-encoded release
        # wrote (form.hex() with no tag). Decoded back to bytes.
        assert _form_from_wire(b"\x01\x02".hex()) == b"\x01\x02"

    def test_non_hex_string_kept_verbatim(self):
        legacy = "(('p', 2), ('n', 1))"
        assert _form_from_wire(legacy) == legacy

    def test_hex_looking_repr_key_survives_a_round_trip(self):
        """Regression: pre-encoding repr keys that happen to be hex.

        Through the old untagged writer this key came back as
        ``b'\\xab\\xcd'`` — a different bucket; with the tag the *writer*
        disambiguates, so new snapshots round-trip every key exactly.
        """
        hexish = "abcd"  # a legacy str key that is also even-length hex
        assert _form_to_wire(hexish) == "abcd"          # strings untagged
        assert _form_to_wire(b"\xab\xcd") == "b:abcd"   # bytes tagged
        assert _form_from_wire("b:abcd") == b"\xab\xcd"


class TestSnapshotUsesTaggedKeys:
    def test_cache_snapshot_round_trips_byte_forms(self):
        from repro.analysis.witness_engine import SweepSpec, run_sweep

        spec = SweepSpec(weaker="Q", stronger="L", max_processors=2,
                         max_names=1, max_variables=2)
        result = run_sweep(spec, workers=1)
        snapshot = result.cache.snapshot()
        assert snapshot
        for wire, _record, _decisions in snapshot:
            assert wire.startswith("b:")
        clone = DecisionCache()
        clone.merge(snapshot)
        assert len(clone) == len(result.cache)
        assert clone.snapshot() == snapshot
