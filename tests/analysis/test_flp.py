"""The Theorem 1 adversary defeats every candidate program."""

import pytest

from repro.core import InstructionSet, ScheduleClass, System
from repro.analysis import candidate_zoo, crash_as_schedule, refute_selection
from repro.runtime import Executor, ReplayScheduler, RoundRobinScheduler
from repro.topologies import figure1_system, figure1_network


@pytest.fixture
def general_system():
    return figure1_system(InstructionSet.S, ScheduleClass.GENERAL)


class TestAdversary:
    @pytest.mark.parametrize("name_builder", candidate_zoo("n"), ids=lambda nb: nb[0])
    def test_every_candidate_falls(self, general_system, name_builder):
        _name, builder = name_builder
        refutation = refute_selection(general_system, builder())
        assert refutation is not None

    def test_double_selection_witness_verifies(self, general_system):
        from repro.analysis import grab_flag

        refutation = refute_selection(general_system, grab_flag("n"))
        assert refutation.kind == "double-selection"
        program = grab_flag("n")
        executor = Executor(
            general_system,
            program,
            ReplayScheduler(refutation.schedule, RoundRobinScheduler(general_system.processors)),
        )
        executor.run(len(refutation.schedule))
        assert len(executor.selected_processors()) >= 2

    def test_starvation_witness_on_waiting_program(self, general_system):
        from repro.analysis import select_immediately
        from repro.runtime import FunctionalProgram, Internal

        never = FunctionalProgram(
            initial=lambda s0: 0,
            action=lambda st: Internal("spin"),
            step=lambda st, a, r: st,
        )
        refutation = refute_selection(general_system, never)
        assert refutation is not None
        assert refutation.kind == "starvation"
        assert refutation.selected == ()

    def test_larger_system(self):
        from repro.analysis import grab_flag
        from repro.topologies import star

        system = System(star(3), None, InstructionSet.S, ScheduleClass.GENERAL)
        refutation = refute_selection(system, grab_flag("hub"))
        assert refutation is not None


class TestCrashSchedules:
    def test_crash_prefix_counts_steps(self, general_system):
        prefix = crash_as_schedule(general_system, "p", steps_before_crash=2)
        assert prefix.count("p") == 2

    def test_immediate_crash_is_empty_prefix(self, general_system):
        assert crash_as_schedule(general_system, "p", 0) == []
