"""Tests for the table formatter."""

from repro.analysis import format_table, yesno


def test_alignment():
    out = format_table(["col", "x"], [["a", 1], ["longer", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert all(len(l) == len(lines[0]) for l in (lines[0], lines[2]))


def test_title():
    out = format_table(["h"], [["v"]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_yesno():
    assert yesno(True) == "yes"
    assert yesno(False) == "no"
