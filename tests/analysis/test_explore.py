"""The symmetry-reduced bounded schedule explorer.

Headline assertions: the explorer *rediscovers* Figure 4's dining
deadlock exhaustively (and pins the lexicographically-least schedule
reaching it), certifies the alternating table DP' deadlock-free to the
same depth, and produces identical verdicts whether deduplication is by
exact configuration or by Θ-orbit canonical form — with the orbit
quotient visiting strictly fewer states.  Sharded runs must be
byte-identical to serial ones, checkpoints must resume, and violation
traces must replay through the standard obs loop.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.analysis.explore import (
    ExploreSpec,
    Violation,
    run_explore,
    verify_counterexample,
    write_counterexample,
)
from repro.exceptions import ExploreError
from repro.obs import (
    EventHub,
    ExplorationProgress,
    InvariantViolated,
    RingBufferSink,
    replay_trace,
)

DP4 = {"topology": "dining", "size": 4, "program": "left-first"}
DP5 = {"topology": "dining", "size": 5, "program": "left-first"}
DPP6 = {
    "topology": "dining",
    "size": 6,
    "alternating": True,
    "program": "left-first",
}

#: Figure 4's circular hold: each philosopher grabs its left fork in
#: system order.  Two steps per philosopher (observe, then lock).
DP4_DEADLOCK = ("phil0", "phil0", "phil1", "phil1", "phil2", "phil2",
                "phil3", "phil3")
DP5_DEADLOCK = ("phil0", "phil0", "phil1", "phil1", "phil2", "phil2",
                "phil3", "phil3", "phil4", "phil4")


def dp4_spec(**overrides):
    base = dict(
        scenario=DP4, max_depth=8, invariants=("exclusion",), split_depth=0
    )
    base.update(overrides)
    return ExploreSpec(**base)


class TestDiningHeadlines:
    def test_figure4_deadlock_rediscovered(self):
        result = run_explore(
            ExploreSpec(scenario=DP5, max_depth=10, invariants=("exclusion",)),
            workers=0,
        )
        assert result.verdict == "violation"
        assert result.violation.kind == "deadlock"
        assert result.violation.depth == 10
        # BFS + discovery-order checks => the (depth, schedule)-least
        # counterexample, i.e. the canonical circular-hold run.
        assert result.violation.schedule == DP5_DEADLOCK

    def test_dp_prime_certified_deadlock_free(self):
        result = run_explore(
            ExploreSpec(scenario=DPP6, max_depth=8, invariants=("exclusion",)),
            workers=0,
        )
        assert result.verdict == "certified"
        assert result.violation is None
        assert result.certified_depth == 8
        # the alternating 6-table's automorphism group is the rotations
        # preserving orientation parity
        assert result.group_size == 6

    def test_deadlock_found_under_k_bounded_fairness(self):
        # Under 5-bounded schedules the two-steps-per-philosopher prefix
        # is illegal; the fair interleaving still deadlocks at depth 10.
        result = run_explore(
            ExploreSpec(
                scenario=DP5,
                max_depth=10,
                fairness="k-bounded",
                k=5,
                invariants=("exclusion",),
                split_depth=0,
            ),
            workers=0,
        )
        assert result.violation is not None
        assert result.violation.kind == "deadlock"
        assert result.violation.depth == 10
        assert result.violation.schedule == (
            "phil0", "phil1", "phil2", "phil3", "phil4",
            "phil0", "phil1", "phil2", "phil3", "phil4",
        )

    def test_livelock_detected_with_dfs_progress(self):
        result = run_explore(
            ExploreSpec(
                scenario=DP5,
                max_depth=11,
                strategy="dfs",
                check_deadlock=False,
                check_livelock=True,
                progress="eating",
                split_depth=0,
            ),
            workers=0,
        )
        assert result.violation is not None
        assert result.violation.kind == "livelock"
        # the reported prefix must independently re-verify
        assert verify_counterexample(
            {
                "kind": "explore",
                "run": result.spec.scenario,
                "explore": result.spec.to_json(),
                "violation": result.violation.to_json(),
            }
        ) is None


class TestTheorem4Figures:
    @pytest.mark.parametrize(
        "topology, marks, model",
        [("figure1", [], "Q"), ("figure2", [], "Q"), ("figure3", ["z"], "S")],
    )
    def test_lockstep_certified_over_all_bounded_schedules(
        self, topology, marks, model
    ):
        """Theorem 4 swept: over *every* n-bounded schedule prefix of the
        paper's example systems (not just one class round robin),
        Θ-classes stay state-uniform at every balanced point."""
        from repro.obs import build_scenario

        scenario = {
            "topology": topology,
            "size": 0,
            "model": model,
            "program": "random",
            "marks": marks,
        }
        n = len(build_scenario(scenario).system.processors)
        result = run_explore(
            ExploreSpec(
                scenario=scenario,
                max_depth=2 * n,
                fairness="k-bounded",
                k=n,
                invariants=("lockstep",),
                check_deadlock=False,
                split_depth=0,
            ),
            workers=0,
        )
        assert result.verdict == "certified"


class TestSymmetryReduction:
    def test_reduced_visits_strictly_fewer_states_same_verdict(self):
        reduced = run_explore(dp4_spec(), workers=0)
        unreduced = run_explore(dp4_spec(symmetry=False), workers=0)
        assert reduced.violation == unreduced.violation
        assert reduced.violation.schedule == DP4_DEADLOCK
        assert reduced.unique_states < unreduced.unique_states
        assert reduced.group_size == 4  # the 4-ring's rotations
        assert unreduced.group_size == 1

    def test_certified_case_agrees_too(self):
        spec = dp4_spec(max_depth=6)
        reduced = run_explore(spec, workers=0)
        unreduced = run_explore(replace(spec, symmetry=False), workers=0)
        assert reduced.verdict == unreduced.verdict == "certified"
        assert reduced.unique_states < unreduced.unique_states


class TestShardingDeterminism:
    def test_sharded_report_byte_identical_to_serial(self):
        spec = dp4_spec(split_depth=2)
        serial = run_explore(spec, workers=0)
        sharded = run_explore(spec, workers=2)
        assert sharded.workers == 2
        assert sharded.shards > 1
        assert json.dumps(serial.report_doc(), sort_keys=True) == json.dumps(
            sharded.report_doc(), sort_keys=True
        )

    def test_split_depth_does_not_change_the_violation(self):
        flat = run_explore(dp4_spec(split_depth=0), workers=0)
        split = run_explore(dp4_spec(split_depth=2), workers=0)
        assert flat.violation == split.violation

    def test_checkpoint_resumes_to_identical_report(self, tmp_path):
        spec = dp4_spec(max_depth=6, split_depth=2)
        path = str(tmp_path / "explore.ckpt.jsonl")
        first = run_explore(spec, workers=0, checkpoint=path)
        resumed = run_explore(spec, workers=0, checkpoint=path)
        assert resumed.resumed_shards > 0
        assert json.dumps(first.report_doc(), sort_keys=True) == json.dumps(
            resumed.report_doc(), sort_keys=True
        )

    def test_checkpoint_spec_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "explore.ckpt.jsonl")
        run_explore(dp4_spec(max_depth=6, split_depth=2), workers=0,
                    checkpoint=path)
        with pytest.raises(ExploreError):
            run_explore(dp4_spec(max_depth=8, split_depth=2), workers=0,
                        checkpoint=path)


class TestHashSeedDeterminism:
    # Serial and sharded reports — including the sorted canonical state
    # digests — must be byte-identical across PYTHONHASHSEED values:
    # canonical keys are encoded bytes, never repr/hash-order artifacts.
    SNIPPET = (
        "import json\n"
        "from repro.analysis.explore import ExploreSpec, run_explore\n"
        "spec = ExploreSpec(scenario={'topology': 'dining', 'size': 4,"
        " 'program': 'left-first'}, max_depth=6,"
        " invariants=('exclusion',), split_depth=2)\n"
        "serial = run_explore(spec, workers=0)\n"
        "sharded = run_explore(spec, workers=2)\n"
        "assert serial.report_doc() == sharded.report_doc()\n"
        "print(json.dumps(sharded.report_doc(), sort_keys=True))\n"
        "print(json.dumps(list(sharded.state_digests)))\n"
    )

    def _run(self, seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(seed)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(__file__), "..", "..", "src"
        )
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            env=env,
            check=True,
            capture_output=True,
            text=True,
        )
        return proc.stdout

    def test_sharded_equals_serial_across_hash_seeds(self):
        out0 = self._run(0)
        out42 = self._run(42)
        assert out0 == out42
        assert '"verdict"' in out0


class TestCounterexampleTraces:
    def test_write_replay_verify_roundtrip(self, tmp_path):
        result = run_explore(dp4_spec(), workers=0)
        path = str(tmp_path / "ce.jsonl")
        summary = write_counterexample(result, path)
        assert summary["steps"] == result.violation.depth
        report = replay_trace(path)
        assert report.ok
        assert report.scenario["kind"] == "explore"

    def test_tampered_violation_caught_on_replay(self, tmp_path):
        result = run_explore(dp4_spec(), workers=0)
        path = str(tmp_path / "ce.jsonl")
        write_counterexample(result, path)
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        # claim the deadlock happens a step early: replay must notice the
        # trace no longer establishes its own violation
        header["scenario"]["violation"]["depth"] -= 1
        header["scenario"]["violation"]["schedule"] = list(
            result.violation.schedule[:-1]
        )
        lines[0] = json.dumps(header)
        tampered = str(tmp_path / "tampered.jsonl")
        open(tampered, "w").write("\n".join(lines) + "\n")
        report = replay_trace(tampered)
        assert not report.ok
        assert report.divergence.reason == "violation"

    def test_restricted_walk_verifies_the_violation(self):
        result = run_explore(dp4_spec(), workers=0)
        header = {
            "kind": "explore",
            "run": result.spec.scenario,
            "explore": result.spec.to_json(),
            "violation": result.violation.to_json(),
        }
        assert verify_counterexample(header) is None
        wrong = dict(header)
        wrong["violation"] = Violation(
            kind="deadlock",
            invariant="",
            depth=7,
            schedule=result.violation.schedule[:-1],
            detail="",
        ).to_json()
        assert verify_counterexample(wrong) is not None


class TestEvents:
    def test_progress_and_violation_events_emitted(self):
        hub = EventHub()
        ring = RingBufferSink(capacity=256)
        hub.attach(ring)
        run_explore(dp4_spec(split_depth=2), workers=0, hub=hub)
        progress = [e for e in ring.events() if isinstance(e, ExplorationProgress)]
        violated = [e for e in ring.events() if isinstance(e, InvariantViolated)]
        assert progress, "per-shard ExplorationProgress events expected"
        assert len(violated) == 1
        assert violated[0].violation_kind == "deadlock"
        assert violated[0].depth == 8


class TestSpecValidation:
    def test_unknown_strategy(self):
        with pytest.raises(ExploreError):
            dp4_spec(strategy="idfs")

    def test_unknown_fairness(self):
        with pytest.raises(ExploreError):
            dp4_spec(fairness="weakly")

    def test_k_requires_k_bounded(self):
        with pytest.raises(ExploreError):
            dp4_spec(k=3)

    def test_k_bounded_requires_k(self):
        with pytest.raises(ExploreError):
            dp4_spec(fairness="k-bounded")

    def test_unknown_invariant(self):
        with pytest.raises(ExploreError):
            dp4_spec(invariants=("mutual",))

    def test_livelock_needs_dfs_and_progress(self):
        with pytest.raises(ExploreError):
            dp4_spec(check_livelock=True)
        with pytest.raises(ExploreError):
            dp4_spec(strategy="dfs", check_livelock=True)

    def test_crash_scenarios_rejected(self):
        with pytest.raises(ExploreError):
            ExploreSpec(
                scenario={**DP4, "crash_at": {"phil0": 3}}, max_depth=4
            )

    def test_k_smaller_than_ring_rejected_at_run(self):
        spec = dp4_spec(fairness="k-bounded", k=4, scenario=DP5, max_depth=6)
        with pytest.raises(ExploreError):
            run_explore(spec, workers=0)

    def test_spec_json_roundtrip(self):
        spec = dp4_spec(fairness="k-bounded", k=4, probes=("uniform",))
        assert ExploreSpec.from_json(spec.to_json()) == spec
