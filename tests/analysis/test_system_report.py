"""Tests for the one-call system dossier."""

from repro.analysis import full_report
from repro.core import POWER_ORDER
from repro.topologies import figure1_network, figure2_network, ring


class TestFullReport:
    def test_figure1_dossier(self):
        report = full_report(figure1_network(), None, "figure 1")
        assert report.processor_classes == 1
        assert report.symmetric
        assert not report.decisions["Q"]
        assert report.decisions["L"]
        assert not report.renaming
        assert report.committee_sizes == (0, 2)

    def test_figure2_dossier(self):
        report = full_report(figure2_network())
        assert report.processor_classes == 2
        assert not report.symmetric
        assert report.decisions["Q"]
        assert not report.decisions["bounded-fair-S"]

    def test_marked_ring_dossier(self):
        report = full_report(ring(4), {"p0": 1})
        assert report.processor_classes == 4
        assert report.renaming
        assert report.committee_sizes == (0, 1, 2, 3, 4)

    def test_text_rendering(self):
        report = full_report(figure1_network(), None, "pair")
        text = report.text
        assert "system dossier: pair" in text
        for model in POWER_ORDER:
            assert model in text
        assert str(report) == text
