"""Property-based tests for the parametric layer.

Three claims are exercised under hypothesis:

1. A labeling schema instantiated at any stabilized size produces the
   exact partition the refinement engine computes directly -- the
   schema is a compressed function of n, not an approximation.
2. A certified cutoff certificate's property holds concretely at
   sampled sizes beyond the cutoff (the "verify once, conclude for all
   n" claim checked at random witnesses, not just cutoff+1/cutoff+2).
3. The counter abstraction is idempotent and ω-bounded on arbitrary
   nested values.
"""

import functools

from hypothesis import given, settings, strategies as st

from repro.analysis.explore import run_explore
from repro.analysis.parametric import (
    OMEGA_DEFAULT,
    abstract_value,
    compute_labeling_schema,
    detect_cutoff,
    eval_depth,
    member_explore_spec,
    property_spec,
)
from repro.core import parametric_family, witness_schema
from repro.core.refinement import compute_similarity_labeling

SETTINGS = settings(max_examples=15, deadline=None)


@functools.lru_cache(maxsize=None)
def _schema(family_name):
    return compute_labeling_schema(family_name)


@functools.lru_cache(maxsize=None)
def _certificate(family_name, property_name):
    return detect_cutoff(family_name, property_name)


class TestSchemaMatchesEngine:
    @SETTINGS
    @given(
        family_name=st.sampled_from(
            ["ring", "marked-ring", "star", "marked-star", "dp", "dp-prime"]
        ),
        offset=st.integers(min_value=0, max_value=4),
    )
    def test_instantiated_partition_equals_direct_refinement(
        self, family_name, offset
    ):
        schema = _schema(family_name)
        fam = parametric_family(family_name)
        n = schema.stabilized_at + offset * fam.step
        direct = compute_similarity_labeling(fam.instantiate(n)).labeling
        instantiated = schema.instantiate(n)
        assert instantiated.blocks == direct.blocks
        assert schema.predicted_classes(n) == len(direct.labels)


class TestCertificateHoldsBeyondCutoff:
    @SETTINGS
    @given(
        case=st.sampled_from([("ring", "lockstep"), ("dp", "deadlock")]),
        extra=st.integers(min_value=1, max_value=3),
    )
    def test_verdict_holds_at_sampled_sizes(self, case, extra):
        family_name, property_name = case
        cert = _certificate(family_name, property_name)
        n = cert.cutoff + extra * cert.step
        fam = parametric_family(family_name)
        spec = member_explore_spec(fam, property_spec(property_name), n)
        result = run_explore(spec, workers=0)
        if cert.verdict == "violation":
            assert result.violation is not None
            assert result.violation.kind == cert.violation_kind
        else:
            assert result.violation is None


class TestWitnessSchemaHolds:
    @SETTINGS
    @given(n=st.integers(min_value=2, max_value=6))
    def test_star_separation_at_any_size(self, n):
        assert witness_schema("Q", "L").holds_at(n)


def _values(depth=2):
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-50, max_value=50),
        st.text(max_size=4),
    )
    return st.recursive(
        scalars,
        lambda children: st.one_of(
            st.tuples(children, children),
            st.frozensets(children, max_size=3),
        ),
        max_leaves=8,
    )


class TestAbstractValueProperties:
    @settings(max_examples=80, deadline=None)
    @given(value=_values(), omega=st.integers(min_value=1, max_value=4))
    def test_idempotent(self, value, omega):
        once = abstract_value(value, omega)
        assert abstract_value(once, omega) == once

    @settings(max_examples=80, deadline=None)
    @given(value=st.integers(min_value=-50, max_value=50),
           omega=st.integers(min_value=1, max_value=4))
    def test_ints_bounded_or_tagged(self, value, omega):
        out = abstract_value(value, omega)
        if isinstance(out, int):
            assert -omega < out < omega
        else:
            assert out == ("ω", value >= 0)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=40),
           rule=st.sampled_from(["n", "2n", "2n+2", "n+1", "6"]))
    def test_depth_rules_positive_and_monotone(self, n, rule):
        d = eval_depth(rule, n)
        assert d >= 1
        assert eval_depth(rule, n + 1) >= d
