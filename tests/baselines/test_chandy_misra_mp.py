"""Tests for the full hygienic dining protocol [CM84]."""

import pytest

from repro.baselines import HygienicDiningProgram, hygienic_ring, run_hygienic
from repro.exceptions import SystemError_


class TestAcyclicGuarantee:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_everyone_eats(self, n):
        report = run_hygienic(n, 3_000, acyclic=True, seed=1)
        assert report.everyone_ate
        assert report.fork_invariant_ok

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_meals_balanced_across_seeds(self, seed):
        report = run_hygienic(5, 5_000, acyclic=True, seed=seed)
        meals = sorted(report.meals.values())
        assert meals[0] > 0
        assert meals[-1] <= 2 * meals[0]  # hygiene = fairness

    def test_fork_invariant_always(self):
        report = run_hygienic(4, 2_000, acyclic=True, seed=7)
        assert report.fork_invariant_ok


class TestInitialization:
    def test_acyclic_placement(self):
        mp = hygienic_ring(4, acyclic=True)
        # philosopher 0 holds both its forks; the last holds none.
        assert mp.state0("p0") == (True, True)
        assert mp.state0("p3") == (False, False)

    def test_cyclic_placement(self):
        mp = hygienic_ring(4, acyclic=False)
        assert all(mp.state0(f"p{i}") == (True, False) for i in range(4))

    def test_tiny_ring_rejected(self):
        with pytest.raises(SystemError_):
            hygienic_ring(1)

    def test_bad_state_rejected(self):
        program = HygienicDiningProgram()
        with pytest.raises(SystemError_, match="initial states"):
            program.on_start("not-a-pair")


class TestProtocolDetails:
    def test_exactly_one_fork_per_edge_even_cyclic(self):
        report = run_hygienic(5, 2_000, acyclic=False, seed=2)
        assert report.fork_invariant_ok

    def test_meal_counts_deterministic_per_seed(self):
        a = run_hygienic(5, 1_500, seed=9)
        b = run_hygienic(5, 1_500, seed=9)
        assert a.meals == b.meals
