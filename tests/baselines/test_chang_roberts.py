"""Chang-Roberts id-ring election baseline."""

import pytest

from repro.exceptions import ExecutionError
from repro.baselines import run_chang_roberts


class TestElection:
    def test_max_id_wins(self):
        result = run_chang_roberts([3, 9, 1, 5])
        assert result.leader_id == 9

    def test_leader_position(self):
        result = run_chang_roberts([3, 9, 1, 5])
        assert result.leader == "p1"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delivery_order_does_not_matter(self, seed):
        result = run_chang_roberts([2, 7, 4, 6, 1], seed=seed)
        assert result.leader_id == 7

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ExecutionError, match="unique identifiers"):
            run_chang_roberts([1, 1, 2])

    def test_message_bounds(self):
        # Sorted-descending placement is the O(n^2)-ish worst case;
        # sorted-ascending is the O(n) best case.
        n = 8
        worst = run_chang_roberts(list(range(n, 0, -1)))
        best = run_chang_roberts(list(range(1, n + 1)))
        assert best.messages <= worst.messages
        assert best.messages >= n  # everyone sends its own id
