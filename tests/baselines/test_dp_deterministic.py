"""DP and DP' via the left-first program (Section 7)."""

import pytest

from repro.runtime import RandomFairScheduler, RoundRobinScheduler
from repro.baselines import LeftFirstDiningProgram, run_dining
from repro.topologies import adjacent_pairs, dining_system, figure4_system, figure5_system


class TestDP:
    """Figure 4: five philosophers, uniform orientation -- deadlock."""

    @pytest.mark.parametrize("make_sched", [
        lambda procs: RoundRobinScheduler(procs),
        lambda procs: RandomFairScheduler(procs, seed=5),
    ])
    def test_figure4_deadlocks(self, make_sched):
        system = figure4_system()
        report = run_dining(
            system,
            LeftFirstDiningProgram(),
            make_sched(system.processors),
            steps=3_000,
            adjacent=adjacent_pairs(system),
        )
        assert report.safety_ok
        assert report.deadlocked
        assert not report.everyone_ate

    def test_any_prime_table_deadlocks(self):
        system = dining_system(7)
        report = run_dining(
            system,
            LeftFirstDiningProgram(),
            RoundRobinScheduler(system.processors),
            steps=3_000,
            adjacent=adjacent_pairs(system),
        )
        assert report.deadlocked


class TestDPPrime:
    """Figure 5: six philosophers, alternating orientation -- progress."""

    @pytest.mark.parametrize("make_sched", [
        lambda procs: RoundRobinScheduler(procs),
        lambda procs: RandomFairScheduler(procs, seed=9),
    ])
    def test_figure5_everyone_eats(self, make_sched):
        system = figure5_system()
        report = run_dining(
            system,
            LeftFirstDiningProgram(),
            make_sched(system.processors),
            steps=6_000,
            adjacent=adjacent_pairs(system),
        )
        assert report.safety_ok
        assert not report.deadlocked
        assert report.everyone_ate

    def test_larger_even_alternating_table(self):
        system = dining_system(8, alternating=True)
        report = run_dining(
            system,
            LeftFirstDiningProgram(),
            RoundRobinScheduler(system.processors),
            steps=8_000,
            adjacent=adjacent_pairs(system),
        )
        assert report.safety_ok
        assert report.everyone_ate


class TestSafetyAlways:
    def test_locks_guarantee_exclusion_even_on_figure4(self):
        system = figure4_system()
        report = run_dining(
            system,
            LeftFirstDiningProgram(eat_steps=3),
            RandomFairScheduler(system.processors, seed=1),
            steps=2_000,
            adjacent=adjacent_pairs(system),
        )
        assert report.safety_ok
