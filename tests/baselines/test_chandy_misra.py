"""Encapsulated asymmetry (Section 8) via the token-dining baseline."""

import pytest

from repro.runtime import RandomFairScheduler, RoundRobinScheduler
from repro.baselines import (
    ChandyMisraDiningProgram,
    TO_LEFT_USER,
    TO_RIGHT_USER,
    orientation_is_acyclic,
    oriented_dining_system,
    run_dining,
)
from repro.topologies import adjacent_pairs


def run_cm(system, scheduler, steps=5_000):
    return run_dining(
        system,
        ChandyMisraDiningProgram(),
        scheduler,
        steps,
        adjacent_pairs(system),
        is_eating=ChandyMisraDiningProgram.is_eating,
        meals_of=ChandyMisraDiningProgram.meals,
    )


class TestAcyclicOrientation:
    def test_default_is_acyclic(self):
        system = oriented_dining_system(5)
        assert orientation_is_acyclic(
            [system.state0(v) for v in system.variables]
        )

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_everyone_eats_on_odd_tables(self, n):
        """The deterministic program solves the prime-sized tables DP
        forbids for symmetric initial states: the asymmetry lives in the
        initial variable states (the acyclic priority orientation)."""
        system = oriented_dining_system(n)
        report = run_cm(system, RoundRobinScheduler(system.processors))
        assert report.safety_ok
        assert report.everyone_ate

    def test_random_schedule(self):
        system = oriented_dining_system(5)
        report = run_cm(system, RandomFairScheduler(system.processors, seed=8))
        assert report.safety_ok
        assert report.everyone_ate


class TestCyclicOrientation:
    def test_cyclic_starves_everyone(self):
        system = oriented_dining_system(5, orientation=[TO_LEFT_USER] * 5)
        assert not orientation_is_acyclic([TO_LEFT_USER] * 5)
        report = run_cm(system, RoundRobinScheduler(system.processors), steps=3_000)
        assert not any(report.meals.values())


class TestSymmetryAccounting:
    def test_program_uses_only_s_instructions(self):
        """The protocol needs no locks: single-writer discipline on the
        tokens makes plain reads/writes race-free."""
        from repro.core import InstructionSet

        system = oriented_dining_system(4)
        assert system.instruction_set is InstructionSet.S

    def test_initial_state_is_the_only_asymmetry(self):
        from repro.core import similarity_labeling

        system = oriented_dining_system(5)
        structural = similarity_labeling(system.with_uniform_state(0))
        assert len({structural[p] for p in system.processors}) == 1
        stateful = similarity_labeling(system)
        assert len({stateful[p] for p in system.processors}) > 1
