"""Chang-Roberts under fair-lossy channels: the retransmission dichotomy.

With stubborn retransmission the election is loss-proof: every one of
100 consecutive seeds elects exactly one leader (the max id).  Without
it, a concrete pinned seed witnesses the failure mode — the max id's
message is dropped once, the network drains, nobody leads.
"""

import pytest

from repro.baselines.chang_roberts import (
    find_failing_election_seed,
    run_chang_roberts_lossy,
)

IDS = [7, 2, 9, 4, 1, 8, 3]


class TestStubbornElection:
    def test_elects_exactly_one_leader_on_100_consecutive_seeds(self):
        for seed in range(100):
            result = run_chang_roberts_lossy(IDS, drop=0.2, seed=seed, stubborn=True)
            assert result.elected, (seed, result)
            assert len(result.leaders) == 1
            assert result.leader_id == max(IDS)

    def test_retransmissions_actually_happen_under_loss(self):
        # aggregate over seeds: loss recovery must be exercised, not lucky
        total = sum(
            run_chang_roberts_lossy(IDS, drop=0.2, seed=s).retransmissions
            for s in range(10)
        )
        assert total > 0


class TestUnprotectedElection:
    # The pinned witness seed: found once by find_failing_election_seed
    # and frozen here so the failure is reproducible forever.
    FAILING_SEED = 2

    def test_find_failing_seed_pins_a_witness(self):
        hit = find_failing_election_seed(IDS, drop=0.2)
        assert hit is not None
        seed, result = hit
        assert seed == self.FAILING_SEED
        assert not result.elected

    def test_pinned_seed_fails_deterministically(self):
        result = run_chang_roberts_lossy(
            IDS, drop=0.2, seed=self.FAILING_SEED, stubborn=False
        )
        assert not result.elected
        assert result.leaders == ()  # the election died, nobody leads
        assert result.quiescent  # ... because the network drained
        assert result.drops > 0

    def test_same_seed_with_retransmission_succeeds(self):
        """The exact run that fails bare succeeds stubborn: the witness
        isolates retransmission as the difference."""
        result = run_chang_roberts_lossy(
            IDS, drop=0.2, seed=self.FAILING_SEED, stubborn=True
        )
        assert result.elected

    def test_duplicate_ids_rejected(self):
        from repro.exceptions import ExecutionError

        with pytest.raises(ExecutionError, match="unique"):
            run_chang_roberts_lossy([1, 1, 2], stubborn=False)
