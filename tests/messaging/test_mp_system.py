"""Unit tests for the message-passing system model."""

import pytest

from repro.exceptions import NetworkError
from repro.messaging import (
    Channel,
    MPSystem,
    bidirectional_ring,
    unidirectional_chain,
    unidirectional_ring,
)


class TestConstruction:
    def test_processors_inferred(self):
        mp = MPSystem([Channel("a", "b", "in", "out")])
        assert mp.processors == ("a", "b")

    def test_duplicate_in_port_rejected(self):
        with pytest.raises(NetworkError, match="two channels on port"):
            MPSystem(
                [
                    Channel("a", "c", "in", "out1"),
                    Channel("b", "c", "in", "out1"),
                ]
            )

    def test_duplicate_out_port_rejected(self):
        with pytest.raises(NetworkError, match="out-port"):
            MPSystem(
                [
                    Channel("a", "b", "in1", "out"),
                    Channel("a", "c", "in1", "out"),
                ]
            )

    def test_isolated_processor_via_processors_arg(self):
        mp = MPSystem([Channel("a", "b", "in", "out")], processors=["a", "b", "c"])
        assert "c" in mp.processors
        assert mp.in_neighbors("c") == ()


class TestStructure:
    def test_unidirectional_ring_strongly_connected(self):
        assert unidirectional_ring(4).is_strongly_connected

    def test_chain_not_strongly_connected(self):
        assert not unidirectional_chain(3).is_strongly_connected

    def test_bidirectional_detection(self):
        assert bidirectional_ring(3).is_bidirectional
        assert not unidirectional_ring(3).is_bidirectional

    def test_in_channels(self):
        mp = unidirectional_ring(3)
        in_chs = mp.in_channels("p1")
        assert len(in_chs) == 1
        assert in_chs[0].sender == "p0"

    def test_neighbors_share_link(self):
        mp = unidirectional_chain(3)
        assert mp.neighbors_share_link("p0", "p1")
        assert not mp.neighbors_share_link("p0", "p2")
