"""Tests for the synchronous rendezvous runtime."""

import pytest

from repro.exceptions import ExecutionError
from repro.messaging import (
    CSPExecutor,
    CSPProgram,
    PairRaceProgram,
    ReceiveOffer,
    SendOffer,
    bidirectional_ring,
    run_pair_race,
)


class TestPairRace:
    def test_exactly_one_leader(self):
        mp = bidirectional_ring(2)
        winners = run_pair_race(mp)
        assert len(winners) == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_either_side_can_win(self, seed):
        mp = bidirectional_ring(2)
        winners = run_pair_race(mp, seed=seed)
        assert winners[0] in {"p0", "p1"}

    def test_winner_varies_with_seed(self):
        mp = bidirectional_ring(2)
        winners = {run_pair_race(mp, seed=s)[0] for s in range(12)}
        assert winners == {"p0", "p1"}  # the race is genuinely symmetric


class TestPlainCSPRestriction:
    def test_mixed_guards_rejected_in_plain_csp(self):
        mp = bidirectional_ring(2)
        ports_out = sorted({c.out_port for c in mp.channels})
        ports_in = sorted({c.port for c in mp.channels})
        program = PairRaceProgram(ports_out, ports_in)
        executor = CSPExecutor(mp, program, extended=False)
        with pytest.raises(ExecutionError, match="plain CSP"):
            executor.step()

    def test_receive_only_fine_in_plain_csp(self):
        class Listener(CSPProgram):
            def offers(self, state):
                return (ReceiveOffer("cw"), ReceiveOffer("ccw"))

            def on_commit(self, state, offer, payload):
                return state

        mp = bidirectional_ring(2)
        executor = CSPExecutor(mp, Listener(), extended=False)
        # Nobody sends: quiescent immediately, but legally so.
        assert executor.run_to_quiescence()
        assert executor.commits == 0


class TestRendezvousSemantics:
    def test_commit_updates_both_parties(self):
        class OneShot(CSPProgram):
            def offers(self, state):
                # p0's "cw" send lands on its neighbor's "ccw" in-port
                # (see bidirectional_ring's wiring).
                if state == 0:
                    return (SendOffer("cw", "X"), ReceiveOffer("ccw"))
                return ()

            def on_commit(self, state, offer, payload):
                return ("sent" if isinstance(offer, SendOffer) else ("got", payload))

        mp = bidirectional_ring(2)
        executor = CSPExecutor(mp, OneShot(), seed=1)
        assert executor.step()
        states = sorted(map(repr, executor.local.values()))
        assert any("sent" in s for s in states)
        assert any("got" in s for s in states)

    def test_quiescence_cap(self):
        class Chatter(CSPProgram):
            def offers(self, state):
                return (SendOffer("cw", "x"), ReceiveOffer("ccw"))

            def on_commit(self, state, offer, payload):
                return state

        mp = bidirectional_ring(2)
        executor = CSPExecutor(mp, Chatter(), seed=0)
        assert not executor.run_to_quiescence(max_commits=10)
        assert executor.commits == 10
