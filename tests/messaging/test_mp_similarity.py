"""Tests for message-passing similarity (Section 6)."""

from repro.core import EnvironmentModel
from repro.messaging import (
    bidirectional_ring,
    labels_learnable,
    mp_selection_possible,
    mp_similarity_labeling,
    unidirectional_chain,
    unidirectional_ring,
)


class TestRings:
    def test_anonymous_ring_all_similar(self):
        theta = mp_similarity_labeling(unidirectional_ring(5))
        assert len(theta.labels) == 1

    def test_marked_ring_all_unique(self):
        theta = mp_similarity_labeling(unidirectional_ring(5, states={0: 1}))
        assert len(theta.labels) == 5

    def test_selection_decisions(self):
        assert not mp_selection_possible(unidirectional_ring(4))
        assert mp_selection_possible(unidirectional_ring(4, states={0: 1}))

    def test_bidirectional_anonymous_all_similar(self):
        theta = mp_similarity_labeling(bidirectional_ring(4))
        assert len(theta.labels) == 1


class TestChains:
    def test_chain_positions_unique(self):
        # p0 has no in-neighbor; position propagates downstream.
        theta = mp_similarity_labeling(unidirectional_chain(4))
        assert len(theta.labels) == 4

    def test_set_model_coarsens(self):
        mp = unidirectional_chain(4)
        multiset = mp_similarity_labeling(mp, EnvironmentModel.MULTISET)
        set_model = mp_similarity_labeling(mp, EnvironmentModel.SET)
        assert multiset.refines(set_model)


class TestLearnability:
    def test_strongly_connected_learnable(self):
        assert labels_learnable(unidirectional_ring(4))

    def test_bidirectional_learnable(self):
        assert labels_learnable(bidirectional_ring(3))

    def test_unidirectional_chain_not_learnable(self):
        """The Section 6 problem case: unidirectional, fair, not strongly
        connected, unknown in-degrees -- like fair S."""
        assert not labels_learnable(unidirectional_chain(4))
