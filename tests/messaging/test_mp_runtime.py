"""Tests for the async message-passing executor."""

import pytest

from repro.exceptions import ExecutionError
from repro.messaging import MPExecutor, MPProgram, unidirectional_ring


class TokenPasser(MPProgram):
    """The marked processor emits one token; everyone forwards once."""

    def on_start(self, state0, out_ports=()):
        if state0 == 1:
            return ("sent", 0), [("next", "token")]
        return ("idle", 0), []

    def on_message(self, state, port, payload):
        kind, hops = state
        if kind == "sent":
            return ("got-back", hops), []
        return ("forwarded", hops + 1), [("next", payload)]


class TestExecutor:
    def test_token_goes_around(self):
        mp = unidirectional_ring(4, states={0: 1})
        ex = MPExecutor(mp, TokenPasser(), seed=0)
        assert ex.run_to_quiescence()
        assert ex.local["p0"][0] == "got-back"
        assert ex.stats.deliveries == 4

    def test_bad_out_port_raises(self):
        class Bad(MPProgram):
            def on_start(self, state0, out_ports=()):
                return 0, [("nonexistent", "x")]

            def on_message(self, state, port, payload):
                return state, []

        mp = unidirectional_ring(3)
        with pytest.raises(ExecutionError, match="out-port"):
            MPExecutor(mp, Bad())

    def test_seed_reproducible(self):
        mp = unidirectional_ring(5, states={0: 1})
        a = MPExecutor(mp, TokenPasser(), seed=3)
        b = MPExecutor(mp, TokenPasser(), seed=3)
        a.run_to_quiescence()
        b.run_to_quiescence()
        assert a.local == b.local
