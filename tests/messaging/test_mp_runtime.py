"""Tests for the async message-passing executor."""

import pytest

from repro.exceptions import ExecutionError
from repro.messaging import (
    ChannelFaults,
    FaultPlan,
    FloodProgram,
    MPExecutor,
    MPProgram,
    bidirectional_ring,
    unidirectional_ring,
)


class TokenPasser(MPProgram):
    """The marked processor emits one token; everyone forwards once."""

    def on_start(self, state0, out_ports=()):
        if state0 == 1:
            return ("sent", 0), [("next", "token")]
        return ("idle", 0), []

    def on_message(self, state, port, payload):
        kind, hops = state
        if kind == "sent":
            return ("got-back", hops), []
        return ("forwarded", hops + 1), [("next", payload)]


class TestExecutor:
    def test_token_goes_around(self):
        mp = unidirectional_ring(4, states={0: 1})
        ex = MPExecutor(mp, TokenPasser(), seed=0)
        assert ex.run_to_quiescence()
        assert ex.local["p0"][0] == "got-back"
        assert ex.stats.deliveries == 4

    def test_bad_out_port_raises(self):
        class Bad(MPProgram):
            def on_start(self, state0, out_ports=()):
                return 0, [("nonexistent", "x")]

            def on_message(self, state, port, payload):
                return state, []

        mp = unidirectional_ring(3)
        with pytest.raises(ExecutionError, match="out-port"):
            MPExecutor(mp, Bad())

    def test_seed_reproducible(self):
        mp = unidirectional_ring(5, states={0: 1})
        a = MPExecutor(mp, TokenPasser(), seed=3)
        b = MPExecutor(mp, TokenPasser(), seed=3)
        a.run_to_quiescence()
        b.run_to_quiescence()
        assert a.local == b.local


class TestReset:
    """Regression: the executor used to do its on-start sends in
    ``__init__`` with no way back, so one instance could only ever run
    once -- a second ``run_to_quiescence`` silently did nothing."""

    def test_reset_restores_initial_sends_and_state(self):
        mp = unidirectional_ring(4, states={0: 1})
        ex = MPExecutor(mp, TokenPasser(), seed=0)
        ex.run_to_quiescence()
        first_local = dict(ex.local)
        first_deliveries = ex.stats.deliveries
        assert first_deliveries > 0
        ex.reset()
        assert ex.stats.deliveries == 0
        assert ex.pending_channels()  # on-start sends are queued again
        ex.run_to_quiescence()
        assert ex.local == first_local
        assert ex.stats.deliveries == first_deliveries

    def test_reset_matches_fresh_construction(self):
        mp = unidirectional_ring(5, states={0: 1})
        reused = MPExecutor(mp, TokenPasser(), seed=3)
        reused.run_to_quiescence()
        reused.reset()
        reused.run_to_quiescence()
        fresh = MPExecutor(mp, TokenPasser(), seed=3)
        fresh.run_to_quiescence()
        assert reused.local == fresh.local
        assert reused.stats == fresh.stats

    def test_reset_restores_fault_rng(self):
        mp = unidirectional_ring(5, states={i: i for i in range(5)})
        plan = FaultPlan(
            default=ChannelFaults(drop=0.3, duplicate=0.2, delay=0.2), seed=9
        )
        ex = MPExecutor(mp, FloodProgram(), seed=1, faults=plan)
        ex.run_to_quiescence()
        first = (dict(ex.local), ex.stats.drops, ex.stats.duplicates)
        ex.reset()
        ex.run_to_quiescence()
        assert (dict(ex.local), ex.stats.drops, ex.stats.duplicates) == first


class TestFloodProgram:
    def test_everyone_learns_the_max_on_reliable_channels(self):
        mp = bidirectional_ring(5, states={i: v for i, v in enumerate([2, 9, 4, 1, 7])})
        ex = MPExecutor(mp, FloodProgram(), seed=0)
        assert ex.run_to_quiescence()
        assert all(ex.local[p][0] == 9 for p in mp.processors)
