"""Tests for the message-passing distributed labeler."""

import pytest

from repro.core import EnvironmentModel
from repro.exceptions import LabelingError
from repro.messaging import (
    Channel,
    MPLabelTables,
    MPSystem,
    bidirectional_ring,
    mp_similarity_labeling,
    run_mp_labeler,
    unidirectional_chain,
    unidirectional_ring,
)


class TestTables:
    def test_in_labels(self):
        mp = unidirectional_ring(4, states={0: 1})
        theta = mp_similarity_labeling(mp)
        tables = MPLabelTables.from_system(mp, theta)
        # p1's prev-sender is p0.
        assert tables.in_label[(theta["p1"], "prev")] == theta["p0"]

    def test_state_filter(self):
        mp = unidirectional_ring(4, states={0: 1})
        tables = MPLabelTables.from_system(mp)
        assert len(tables.plabels_with_state(1)) == 1
        assert len(tables.plabels_with_state(0)) == 3

    def test_non_respecting_labeling_rejected(self):
        from repro.core import Labeling

        mp = unidirectional_ring(3, states={0: 1})
        bogus = Labeling({p: 0 for p in mp.processors})
        with pytest.raises(LabelingError):
            MPLabelTables.from_system(mp, bogus)


class TestConvergence:
    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_marked_unidirectional_ring(self, n):
        out = run_mp_labeler(unidirectional_ring(n, states={0: 1}))
        assert out.all_correct

    def test_marked_bidirectional_ring(self):
        out = run_mp_labeler(bidirectional_ring(5, states={0: 1}))
        assert out.all_correct

    def test_anonymous_ring_trivially_labeled(self):
        # One class: every PEC is a singleton immediately.
        out = run_mp_labeler(unidirectional_ring(4))
        assert out.all_correct

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delivery_order_irrelevant(self, seed):
        out = run_mp_labeler(unidirectional_ring(6, states={0: 1}), seed=seed)
        assert out.all_correct


class TestObstruction:
    def test_chain_upstream_stays_uncertain(self):
        """The Section 6 learnability failure, observed live: processors
        with unknowable upstream context never converge."""
        out = run_mp_labeler(unidirectional_chain(4))
        assert not out.all_correct
        assert "p0" in out.uncertain
        # The sink accumulates enough exclusions to learn.
        assert out.learned["p3"] == out.truth["p3"]

    def test_never_wrong_even_in_chain(self):
        mp = unidirectional_chain(5)
        out = run_mp_labeler(mp)
        for p, learned in out.learned.items():
            if learned is not None:
                assert learned == out.truth[p]
