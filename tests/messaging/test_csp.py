"""Tests for the CSP analogy (Section 6)."""

from repro.core import Labeling
from repro.messaging import (
    bidirectional_ring,
    csp_rendezvous_family,
    decide_selection_extended_csp,
    decide_selection_plain_csp,
    is_supersimilarity_extended_csp,
    linked_pairs,
    mp_similarity_labeling,
)


class TestLinkedPairs:
    def test_ring_pairs(self):
        assert len(linked_pairs(bidirectional_ring(4))) == 4


class TestExtendedCSPSupersimilarity:
    def test_anonymous_ring_allsame_rejected(self):
        mp = bidirectional_ring(4)
        allsame = Labeling({p: 0 for p in mp.processors})
        # Environment-respecting, but neighbors share the label.
        assert not is_supersimilarity_extended_csp(mp, allsame)

    def test_two_coloring_accepted(self):
        mp = bidirectional_ring(4)
        coloring = Labeling({"p0": 0, "p2": 0, "p1": 1, "p3": 1})
        theta = mp_similarity_labeling(mp)
        if coloring.refines(theta):
            assert is_supersimilarity_extended_csp(mp, coloring)
        # (On an anonymous ring all nodes are similar, so the 2-coloring
        # refines theta trivially.)
        assert coloring.refines(theta)


class TestSelectionDecisions:
    def test_pair_solvable_in_extended_csp(self):
        assert decide_selection_extended_csp(bidirectional_ring(2))

    def test_anonymous_ring_unsolvable(self):
        assert not decide_selection_extended_csp(bidirectional_ring(6))

    def test_family_size(self):
        fam = csp_rendezvous_family(bidirectional_ring(2))
        assert 1 <= len(fam) <= 2

    def test_plain_csp_inherits_async_decision(self):
        from repro.messaging import unidirectional_ring

        assert not decide_selection_plain_csp(bidirectional_ring(4))
