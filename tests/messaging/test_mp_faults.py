"""Tests for channel fault injection and crash-stop processors."""

import pytest

from repro.exceptions import ExecutionError
from repro.messaging import (
    ChannelFaults,
    FaultPlan,
    FloodProgram,
    MPExecutor,
    drive_mp,
    unidirectional_ring,
)
from repro.obs import MetricsSink


def _states(values):
    return {i: v for i, v in enumerate(values)}


class TestChannelFaults:
    def test_probabilities_validated(self):
        with pytest.raises(ExecutionError, match="probability"):
            ChannelFaults(drop=1.5)
        with pytest.raises(ExecutionError, match="max_delay"):
            ChannelFaults(delay=0.5, max_delay=0)

    def test_json_round_trip(self):
        faults = ChannelFaults(drop=0.25, duplicate=0.5, delay=0.1, max_delay=7)
        assert ChannelFaults.from_json(faults.to_json()) == faults


class TestFaultPlan:
    def test_per_channel_overrides_default(self):
        plan = FaultPlan(
            default=ChannelFaults(drop=0.5),
            per_channel={("p0", "next"): ChannelFaults(drop=0.0)},
        )
        mp = unidirectional_ring(3)
        by_sender = {str(c.sender): c for c in mp.channels}
        assert plan.policy_for(by_sender["p0"]).drop == 0.0
        assert plan.policy_for(by_sender["p1"]).drop == 0.5

    def test_json_round_trip(self):
        plan = FaultPlan(
            default=ChannelFaults(drop=0.2),
            per_channel={("p1", "next"): ChannelFaults(duplicate=0.9)},
            crash_at={"p2": 14},
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_ghost_crash_processor_rejected_by_executor(self):
        mp = unidirectional_ring(3)
        plan = FaultPlan(crash_at={"nope": 5})
        with pytest.raises(ExecutionError, match="unknown processors"):
            MPExecutor(mp, FloodProgram(), faults=plan)


class TestLossDupDelay:
    def test_pure_loss_is_counted_and_observed(self):
        mp = unidirectional_ring(6, states=_states(range(6)))
        plan = FaultPlan(default=ChannelFaults(drop=0.4), seed=2)
        metrics = MetricsSink()
        ex = MPExecutor(mp, FloodProgram(), seed=0, faults=plan, sink=metrics)
        assert ex.run_to_quiescence()
        assert ex.stats.drops > 0
        assert metrics.drops == ex.stats.drops
        assert metrics.deliveries == ex.stats.deliveries

    def test_drop_one_means_everything_is_lost(self):
        mp = unidirectional_ring(4, states=_states([1, 0, 0, 0]))
        plan = FaultPlan(default=ChannelFaults(drop=1.0), seed=0)
        ex = MPExecutor(mp, FloodProgram(), faults=plan)
        assert ex.run_to_quiescence()
        assert ex.stats.deliveries == 0
        assert ex.stats.drops == ex.stats.sends

    def test_duplication_is_harmless_for_idempotent_flood(self):
        mp = unidirectional_ring(5, states=_states([3, 0, 4, 1, 2]))
        plan = FaultPlan(default=ChannelFaults(duplicate=0.7), seed=5)
        ex = MPExecutor(mp, FloodProgram(), faults=plan)
        assert ex.run_to_quiescence()
        assert ex.stats.duplicates > 0
        assert all(ex.local[p][0] == 4 for p in mp.processors)

    def test_delay_reorders_but_loses_nothing(self):
        mp = unidirectional_ring(5, states=_states([4, 3, 2, 1, 0]))
        plan = FaultPlan(default=ChannelFaults(delay=0.6, max_delay=5), seed=7)
        ex = MPExecutor(mp, FloodProgram(), faults=plan)
        assert ex.run_to_quiescence()
        assert ex.stats.delayed > 0
        # delayed copies are released, never dropped: flood still completes
        assert all(ex.local[p][0] == 4 for p in mp.processors)

    def test_fault_pattern_reproducible_per_seed(self):
        mp = unidirectional_ring(6, states=_states(range(6)))

        def run(seed):
            plan = FaultPlan(
                default=ChannelFaults(drop=0.3, duplicate=0.3, delay=0.3), seed=seed
            )
            ex = MPExecutor(mp, FloodProgram(), seed=1, faults=plan)
            ex.run_to_quiescence()
            s = ex.stats
            return (s.deliveries, s.drops, s.duplicates, s.delayed, dict(ex.local))

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestCrashStop:
    def test_crashed_processor_stops_and_discards(self):
        mp = unidirectional_ring(4, states=_states([5, 0, 0, 0]))
        plan = FaultPlan(crash_at={"p2": 0})
        metrics = MetricsSink()
        ex = MPExecutor(mp, FloodProgram(), seed=0, faults=plan, sink=metrics)
        assert ex.run_to_quiescence()
        assert ex.crashed() == ("p2",)
        # p2 never processed anything: its state is untouched since start
        assert ex.local["p2"][0] == 0
        # the flood dies at the crash: p3 (downstream of p2) never learns 5
        assert ex.local["p3"][0] == 3 or ex.local["p3"][0] == 0
        assert metrics.mp_crashes == [("p2", 0)]
        assert ex.stats.discarded > 0

    def test_sends_to_crashed_processor_vanish(self):
        mp = unidirectional_ring(3, states=_states([9, 0, 0]))
        plan = FaultPlan(crash_at={"p1": 0})
        to_p1 = 0

        class Sink:
            def on_event(self, event):
                nonlocal to_p1
                doc = event.to_json()
                if doc.get("kind") == "delivery" and doc["to"] == "p1":
                    to_p1 += 1

        ex = MPExecutor(mp, FloodProgram(), faults=plan, sink=Sink())
        assert ex.run_to_quiescence()
        assert to_p1 == 0  # p0's 9 was discarded, nothing else arrives
        assert ex.local["p1"][0] == 0
        assert ex.stats.discarded > 0

    def test_crash_on_the_delivery_clock(self):
        mp = unidirectional_ring(5, states=_states(range(5)))
        plan = FaultPlan(crash_at={"p3": 4})
        ex = MPExecutor(mp, FloodProgram(), seed=6, faults=plan)
        delivered_to_p3 = 0

        class Sink:
            def on_event(self, event):
                nonlocal delivered_to_p3
                doc = event.to_json()
                if doc.get("kind") == "delivery" and doc["to"] == "p3":
                    delivered_to_p3 += 1
                    assert doc["i"] < 4  # never after the crash point

        ex.events.attach(Sink())
        assert ex.run_to_quiescence()
        assert "p3" in ex.crashed()


class TestStubbornRetransmission:
    def test_retransmission_recovers_from_loss(self):
        mp = unidirectional_ring(6, states=_states([0, 5, 1, 4, 2, 3]))
        plan = FaultPlan(default=ChannelFaults(drop=0.4), seed=3)
        ex = MPExecutor(mp, FloodProgram(), seed=0, faults=plan)
        report = drive_mp(ex, stubborn=True)
        assert report.retransmissions > 0
        assert all(ex.local[p][0] == 5 for p in mp.processors)

    def test_without_retransmission_the_flood_can_die(self):
        mp = unidirectional_ring(6, states=_states([0, 5, 1, 4, 2, 3]))
        plan = FaultPlan(default=ChannelFaults(drop=0.4), seed=3)
        ex = MPExecutor(mp, FloodProgram(), seed=0, faults=plan)
        report = drive_mp(ex, stubborn=False)
        assert report.quiescent
        assert not all(ex.local[p][0] == 5 for p in mp.processors)

    def test_fully_lossy_channel_terminates(self):
        """drop=1.0 + stubborn retransmission must not loop forever: the
        idle-round guard caps consecutive all-dropped rounds."""
        mp = unidirectional_ring(3, states=_states([1, 0, 0]))
        plan = FaultPlan(default=ChannelFaults(drop=1.0), seed=0)
        ex = MPExecutor(mp, FloodProgram(), faults=plan)
        report = drive_mp(ex, stubborn=True, max_idle_rounds=10)
        assert report.deliveries == 0
        assert report.retransmissions > 0
        assert report.quiescent
