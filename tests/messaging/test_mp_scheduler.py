"""Tests for the pluggable delivery schedulers."""

import pytest

from repro.exceptions import ScheduleError
from repro.messaging import (
    AdversarialDeliveryScheduler,
    DeliveryReplayError,
    FifoDeliveryScheduler,
    FloodProgram,
    MPExecutor,
    RandomDeliveryScheduler,
    ReplayDeliveryScheduler,
    bidirectional_ring,
    unidirectional_ring,
)


def _deliveries(executor, cap=10_000):
    """Run to quiescence, returning the (receiver, port, payload) log."""
    log = []

    class Sink:
        def on_event(self, event):
            doc = event.to_json()
            if doc.get("kind") == "delivery":
                log.append((doc["to"], doc["port"], doc["payload"]))

    executor.events.attach(Sink())
    assert executor.run_to_quiescence(cap)
    return log


class TestRandomDelivery:
    def test_default_scheduler_matches_explicit_random(self):
        """The executor's implicit default must be byte-compatible with
        the historical inlined ``rng.choice`` (same seed, same run)."""
        states = {i: i for i in range(6)}
        a = MPExecutor(unidirectional_ring(6, states=states), FloodProgram(), seed=5)
        b = MPExecutor(
            unidirectional_ring(6, states=states),
            FloodProgram(),
            scheduler=RandomDeliveryScheduler(5),
        )
        assert _deliveries(a) == _deliveries(b)

    def test_reset_reproduces(self):
        sched = RandomDeliveryScheduler(3)
        mp = bidirectional_ring(4, states={i: i for i in range(4)})
        ex = MPExecutor(mp, FloodProgram(), scheduler=sched)
        # snapshot: the first sink stays attached, so the original list
        # keeps growing when the executor is re-run after reset()
        first = list(_deliveries(ex))
        ex.reset()
        assert _deliveries(ex) == first


class TestFifoDelivery:
    def test_oldest_message_first(self):
        """FIFO delivers in global send order: the whole network is one
        queue, so the flood settles with every delivery in send order."""
        mp = unidirectional_ring(5, states={i: i for i in range(5)})
        ex = MPExecutor(mp, FloodProgram(), scheduler=FifoDeliveryScheduler())
        log = _deliveries(ex)
        # On-start sends happen p0..p4 in processor order; FIFO must
        # deliver those five first, in exactly that order.
        first_five = [entry[0] for entry in log[:5]]
        assert first_five == ["p1", "p2", "p3", "p4", "p0"]

    def test_deterministic_without_seed(self):
        mp = bidirectional_ring(5, states={i: (i * 3) % 5 for i in range(5)})
        a = MPExecutor(mp, FloodProgram(), scheduler=FifoDeliveryScheduler())
        b = MPExecutor(mp, FloodProgram(), scheduler=FifoDeliveryScheduler())
        assert _deliveries(a) == _deliveries(b)


class TestAdversarialDelivery:
    def test_callback_drives_choice(self):
        picks = []

        def worst(index, pending, view):
            # always deliver on the lexicographically last pending channel
            choice = max(pending, key=lambda c: (str(c.receiver), c.port))
            picks.append(str(choice.receiver))
            return choice

        mp = unidirectional_ring(4, states={i: i for i in range(4)})
        ex = MPExecutor(
            mp, FloodProgram(), scheduler=AdversarialDeliveryScheduler(worst)
        )
        _deliveries(ex)
        assert picks and picks[0] == max(picks)


class TestReplayDelivery:
    def test_replays_a_recorded_run(self):
        mp = unidirectional_ring(5, states={i: i for i in range(5)})
        original = MPExecutor(mp, FloodProgram(), seed=8)
        log = _deliveries(original)
        prefix = [(to, port) for to, port, _ in log]
        replayed = MPExecutor(
            mp, FloodProgram(), scheduler=ReplayDeliveryScheduler(prefix)
        )
        assert _deliveries(replayed) == log

    def test_divergent_pick_raises_with_evidence(self):
        mp = unidirectional_ring(3, states={i: i for i in range(3)})
        ex = MPExecutor(
            mp,
            FloodProgram(),
            scheduler=ReplayDeliveryScheduler([("p9", "prev")]),
        )
        with pytest.raises(DeliveryReplayError, match="delivery 0") as info:
            ex.deliver_one()
        assert info.value.index == 0
        assert info.value.expected == ("p9", "prev")
        assert info.value.pending  # what actually was deliverable

    def test_exhausted_without_fallback_raises(self):
        mp = unidirectional_ring(3, states={i: i for i in range(3)})
        ex = MPExecutor(
            mp, FloodProgram(), scheduler=ReplayDeliveryScheduler([("p1", "prev")])
        )
        assert ex.deliver_one()
        with pytest.raises(ScheduleError, match="exhausted"):
            ex.deliver_one()

    def test_fallback_takes_over(self):
        mp = unidirectional_ring(4, states={i: i for i in range(4)})
        sched = ReplayDeliveryScheduler(
            [("p1", "prev")], then=FifoDeliveryScheduler()
        )
        ex = MPExecutor(mp, FloodProgram(), scheduler=sched)
        assert ex.run_to_quiescence()
        assert all(ex.local[p][0] == 3 for p in mp.processors)
