"""Hypothesis strategies shared by the property-based tests.

Generates small random systems: a handful of processors, one or two
names, a small variable pool, binary initial states.  Small sizes keep
the exponential analyses (mimicry, relabel families, automorphism
enumeration) fast while still exercising every structural case: multiple
writers per variable, shared vs private variables, state-marked nodes,
disconnected systems.
"""

from hypothesis import strategies as st

from repro.core import InstructionSet, Network, ScheduleClass, System


@st.composite
def networks(draw, max_processors=5, max_variables=4, max_names=2):
    n_procs = draw(st.integers(min_value=1, max_value=max_processors))
    n_names = draw(st.integers(min_value=1, max_value=max_names))
    n_vars = draw(st.integers(min_value=1, max_value=max_variables))
    names = tuple(f"n{i}" for i in range(n_names))
    variables = [f"v{j}" for j in range(n_vars)]
    edges = {}
    for i in range(n_procs):
        edges[f"p{i}"] = {
            name: draw(st.sampled_from(variables)) for name in names
        }
    return Network(names, edges)


@st.composite
def systems(
    draw,
    instruction_set=InstructionSet.Q,
    schedule_class=ScheduleClass.FAIR,
    max_processors=5,
    max_variables=4,
    max_names=2,
    n_states=2,
):
    net = draw(networks(max_processors, max_variables, max_names))
    state = {
        node: draw(st.integers(min_value=0, max_value=n_states - 1))
        for node in net.nodes
    }
    return System(net, state, instruction_set, schedule_class)


@st.composite
def connected_systems(draw, **kwargs):
    from hypothesis import assume

    system = draw(systems(**kwargs))
    assume(system.network.is_connected)
    return system


@st.composite
def scheduler_arenas(draw, min_processors=1, max_processors=6):
    """A (processors, k, seed) triple for scheduler property tests.

    ``k`` ranges from the legal minimum (the processor count) up to 3x,
    covering both the tightly-forced regime (k == n: round-robin-like)
    and the mostly-random one.
    """
    n = draw(st.integers(min_value=min_processors, max_value=max_processors))
    processors = [f"p{i}" for i in range(n)]
    k = draw(st.integers(min_value=n, max_value=3 * n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return processors, k, seed
