"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestAnalyze:
    def test_marked_ring(self, capsys):
        assert main(["analyze", "ring", "4", "--mark", "p0"]) == 0
        out = capsys.readouterr().out
        assert "selection possible: yes" in out

    def test_anonymous_ring(self, capsys):
        assert main(["analyze", "ring", "4"]) == 0
        out = capsys.readouterr().out
        assert "selection possible: no" in out

    def test_star_in_l(self, capsys):
        assert main(["analyze", "star", "3", "--model", "L"]) == 0
        out = capsys.readouterr().out
        assert "selection possible: yes" in out

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "moebius", "4"])


class TestOtherCommands:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 5" in out

    def test_hierarchy(self, capsys):
        assert main(["hierarchy"]) == 0
        out = capsys.readouterr().out
        assert "fair-S" in out and "L2" in out

    def test_dining_deadlock(self, capsys):
        assert main(["dining", "5", "--steps", "1500"]) == 0
        out = capsys.readouterr().out
        assert "deadlocked:          yes" in out

    def test_dining_alternating(self, capsys):
        assert main(["dining", "6", "--alternating", "--steps", "1500"]) == 0
        out = capsys.readouterr().out
        assert "everyone ate:        yes" in out

    def test_elect_randomized(self, capsys):
        assert main(["elect", "5", "--randomized", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Itai-Rodeh" in out and "leader" in out

    def test_elect_deterministic(self, capsys):
        assert main(["elect", "4"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAnalyzeFromFile:
    def test_json_file(self, tmp_path, capsys):
        from repro.io import dump
        from repro.topologies import figure2_system

        target = tmp_path / "sys.json"
        dump(figure2_system(), str(target))
        assert main(["analyze", "file", "--file", str(target)]) == 0
        out = capsys.readouterr().out
        assert "selection possible: yes" in out

    def test_file_without_path_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "file"])


class TestReport:
    def test_report_command(self, capsys):
        assert main(["report", "ring", "5", "--mark", "p0"]) == 0
        out = capsys.readouterr().out
        assert "system dossier" in out
        assert "renaming possible" in out


class TestBatch:
    def test_batch_ring(self, capsys):
        assert main(["batch", "ring", "10", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "10 member(s)" in out
        assert "distinct systems 10" in out
        # Marked ring: every node unique, same count for every member.
        assert "[20]" in out

    def test_batch_member_limit(self, capsys):
        assert main(["batch", "ring", "10", "--members", "3", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "3 member(s)" in out


class TestBench:
    def test_bench_smoke(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_refinement.json"
        assert main([
            "bench",
            "--sizes", "10",
            "--topologies", "ring",
            "--batch-n", "10",
            "--family-size", "1",
            "--workers", "1",
            "--output", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "worklist" in out
        assert out_file.exists()

    def test_bench_bad_sizes_rejected(self):
        with pytest.raises(SystemExit, match="comma-separated integers"):
            main(["bench", "--sizes", "abc", "--output", ""])

    def test_bench_unknown_topology_rejected(self):
        with pytest.raises(SystemExit, match="unknown topology"):
            main(["bench", "--sizes", "10", "--topologies", "moebius",
                  "--output", ""])

    def test_bench_no_output(self, capsys):
        assert main([
            "bench",
            "--sizes", "10",
            "--topologies", "ring",
            "--batch-n", "10",
            "--family-size", "1",
            "--workers", "1",
            "--skip-baseline",
            "--output", "",
        ]) == 0
        out = capsys.readouterr().out
        assert "written:" not in out


class TestWitness:
    def test_sweep_with_checkpoint_events_output(self, tmp_path, capsys):
        out = tmp_path / "witnesses.json"
        ck = tmp_path / "sweep.jsonl"
        ev = tmp_path / "events.jsonl"
        assert main([
            "witness", "Q", "L",
            "--max-processors", "2",
            "--workers", "1",
            "--checkpoint", str(ck),
            "--events", str(ev),
            "--output", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "witness sweep Q < L" in text
        assert "0 resumed" in text
        assert out.exists() and ck.exists() and ev.exists()
        doc = __import__("json").loads(out.read_text())
        assert doc["spec"]["weaker"] == "Q"
        assert doc["witnesses"]
        # A second run over the same checkpoint resumes every shard.
        assert main([
            "witness", "Q", "L",
            "--max-processors", "2",
            "--workers", "1",
            "--checkpoint", str(ck),
        ]) == 0
        text = capsys.readouterr().out
        assert "16 shards, 16 resumed" in text

    def test_alias_labels_accepted(self, capsys):
        assert main([
            "witness", "BFS", "Q",
            "--max-processors", "2", "--max-names", "1",
            "--workers", "1", "--limit", "1",
        ]) == 0
        assert "bounded-fair-S < Q" in capsys.readouterr().out

    def test_unknown_label_rejected(self):
        with pytest.raises(SystemExit, match="unknown model label"):
            main(["witness", "Q", "nope", "--workers", "1"])


class TestBenchWitness:
    def test_bench_witness_smoke(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_witness.json"
        assert main([
            "bench-witness",
            "--pairs", "Q<L",
            "--max-processors", "2", "--max-names", "1",
            "--workers", "1",
            "--output", str(out_file),
        ]) == 0
        text = capsys.readouterr().out
        assert "witness-sweep bench" in text
        assert "all lists agree: yes" in text
        assert out_file.exists()

    def test_bad_pairs_rejected(self):
        with pytest.raises(SystemExit, match="WEAKER<STRONGER"):
            main(["bench-witness", "--pairs", "QL", "--output", ""])


class TestExplore:
    def test_dining_deadlock_end_to_end(self, tmp_path, capsys):
        report = tmp_path / "explore.json"
        trace = tmp_path / "ce.jsonl"
        # a violation exits 1, like replay on divergence
        assert main([
            "explore", "dining", "4",
            "--program", "left-first",
            "--max-depth", "8",
            "--invariant", "exclusion",
            "--workers", "1",
            "--output", str(report),
            "--counterexample", str(trace),
        ]) == 1
        out = capsys.readouterr().out
        assert "deadlock at depth 8" in out
        assert report.exists() and trace.exists()
        import json

        doc = json.loads(report.read_text())
        assert doc["verdict"] == "violation"
        assert doc["violation"]["kind"] == "deadlock"
        # and the counterexample replays through the standard loop
        assert main(["replay", str(trace)]) == 0
        assert "replay ok" in capsys.readouterr().out

    def test_certified_exits_zero(self, capsys):
        assert main([
            "explore", "dining", "4",
            "--alternating",
            "--program", "left-first",
            "--max-depth", "6",
            "--workers", "1",
        ]) == 0
        assert "certified" in capsys.readouterr().out

    def test_states_output_writes_sorted_digests(self, tmp_path, capsys):
        states = tmp_path / "states.txt"
        assert main([
            "explore", "dining", "4",
            "--alternating",
            "--program", "left-first",
            "--max-depth", "6",
            "--workers", "1",
            "--states-output", str(states),
        ]) == 0
        assert "states:" in capsys.readouterr().out
        lines = states.read_text().splitlines()
        assert lines and lines == sorted(lines)
        assert all(bytes.fromhex(line) for line in lines)

    def test_bad_spec_rejected(self):
        with pytest.raises(SystemExit, match="k-bounded"):
            main(["explore", "ring", "3", "--k", "3", "--workers", "1"])


class TestBenchExplore:
    def test_parser_wiring(self):
        args = build_parser().parse_args(
            ["bench-explore", "--workers", "1", "--output", ""]
        )
        assert args.func.__name__ == "cmd_bench_explore"
        assert args.workers == 1


class TestExplain:
    def test_explain_command(self, capsys):
        assert main(["explain", "path", "4", "p0", "p3"]) == 0
        out = capsys.readouterr().out
        assert "split at round" in out

    def test_explain_similar_pair(self, capsys):
        assert main(["explain", "ring", "4", "p0", "p2"]) == 0
        out = capsys.readouterr().out
        assert "similar" in out


class TestWorkersValidation:
    """Every --workers flag rejects 0 and negatives with a clean
    argparse error (exit code 2), everywhere."""

    SUBCOMMANDS = [
        ["batch", "ring", "6"],
        ["bench"],
        ["witness", "Q", "L"],
        ["bench-witness"],
        ["explore", "ring", "3"],
        ["bench-explore"],
        ["serve"],
        ["bench-serve"],
    ]

    @pytest.mark.parametrize("argv", SUBCOMMANDS,
                             ids=[c[0] for c in SUBCOMMANDS])
    @pytest.mark.parametrize("bad", ["0", "-1"])
    def test_zero_and_negative_rejected(self, argv, bad, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(argv + ["--workers", bad])
        assert exc.value.code == 2
        assert ">= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", SUBCOMMANDS,
                             ids=[c[0] for c in SUBCOMMANDS])
    def test_non_integer_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(argv + ["--workers", "many"])
        assert exc.value.code == 2

    def test_one_means_serial_and_is_accepted(self):
        args = build_parser().parse_args(["witness", "Q", "L",
                                          "--workers", "1"])
        assert args.workers == 1


class TestServeParsers:
    def test_serve_requires_a_front_end(self):
        with pytest.raises(SystemExit, match="front end"):
            main(["serve"])

    def test_serve_wiring(self):
        args = build_parser().parse_args(
            ["serve", "--http", "0", "--store", "/tmp/s", "--workers", "2"]
        )
        assert args.func.__name__ == "cmd_serve"
        assert args.http == 0 and args.store == "/tmp/s" and args.workers == 2

    def test_bench_serve_wiring(self):
        args = build_parser().parse_args(
            ["bench-serve", "--requests", "8", "--seed", "3", "--output", ""]
        )
        assert args.func.__name__ == "cmd_bench_serve"
        assert args.requests == 8 and args.seed == 3

    def test_serve_hardening_flags_wiring(self):
        args = build_parser().parse_args(
            ["serve", "--http", "0", "--deadline", "2.5",
             "--store-max-bytes", "65536"]
        )
        assert args.deadline == 2.5
        assert args.store_max_bytes == 65536
        defaults = build_parser().parse_args(["serve", "--http", "0"])
        assert defaults.deadline is None
        assert defaults.store_max_bytes is None


class TestStoreGC:
    def _populate(self, tmp_path, count=12):
        from repro.store import ContentStore

        root = str(tmp_path / "store")
        with ContentStore(root) as store:
            for i in range(count):
                store.put("ns", b"key-%d" % i, {"i": i, "pad": "x" * 40})
        return root

    def test_parser_wiring(self):
        args = build_parser().parse_args(
            ["store-gc", "/tmp/s", "--max-bytes", "1024", "--dry-run"]
        )
        assert args.func.__name__ == "cmd_store_gc"
        assert args.dir == "/tmp/s"
        assert args.max_bytes == 1024
        assert args.dry_run and not args.check

    def test_collect_end_to_end(self, tmp_path, capsys):
        from repro.store.gc import usage

        root = self._populate(tmp_path)
        total = sum(u.bytes for u in usage(root).values())
        cap = total // 2
        assert main(["store-gc", root, "--max-bytes", str(cap)]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert sum(u.bytes for u in usage(root).values()) <= cap

    def test_check_ok_then_corruption_fails(self, tmp_path, capsys):
        import json
        import os

        root = self._populate(tmp_path, count=4)
        assert main(["store-gc", root, "--check"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] and doc["namespaces"]["ns"]["entries"] == 4

        shard = os.path.join(root, "ns", sorted(os.listdir(
            os.path.join(root, "ns")))[0])
        victim = os.path.join(shard, sorted(os.listdir(shard))[0])
        with open(victim, "w") as fh:
            fh.write("garbage")
        assert main(["store-gc", root, "--check"]) == 1

    def test_dry_run_and_output(self, tmp_path, capsys):
        import json

        from repro.store.gc import usage

        root = self._populate(tmp_path)
        before = {ns: u.entries for ns, u in usage(root).items()}
        report_path = str(tmp_path / "report.json")
        assert main(["store-gc", root, "--max-bytes", "1",
                     "--dry-run", "--output", report_path]) == 0
        assert {ns: u.entries for ns, u in usage(root).items()} == before
        doc = json.load(open(report_path))
        assert doc["dry_run"] and doc["evicted_entries"] == 12


class TestParametric:
    def test_ring_lockstep_certifies(self, capsys, tmp_path):
        out_path = tmp_path / "param.json"
        assert main([
            "parametric", "--family", "ring", "--property", "lockstep",
            "--output", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "for all n >= 4" in out
        assert "verify_cutoff: confirmed" in out
        assert out_path.exists()

    def test_no_schema_skips_schema_block(self, capsys):
        assert main([
            "parametric", "--family", "ring", "--property", "lockstep",
            "--no-schema",
        ]) == 0
        out = capsys.readouterr().out
        assert "labeling schema" not in out

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["parametric", "--family", "torus", "--property", "deadlock"])

    def test_unknown_property_rejected(self):
        with pytest.raises(SystemExit):
            main(["parametric", "--family", "ring", "--property", "liveness"])

    def test_non_uniform_property_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["parametric", "--family", "ring", "--property", "deadlock"])


class TestBenchParametric:
    def test_single_case(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_parametric.json"
        assert main([
            "bench-parametric", "--cases", "ring/lockstep",
            "--output", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "ring/lockstep" in out
        assert out_path.exists()

    def test_malformed_cases_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench-parametric", "--cases", "ring-lockstep"])
