"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestAnalyze:
    def test_marked_ring(self, capsys):
        assert main(["analyze", "ring", "4", "--mark", "p0"]) == 0
        out = capsys.readouterr().out
        assert "selection possible: yes" in out

    def test_anonymous_ring(self, capsys):
        assert main(["analyze", "ring", "4"]) == 0
        out = capsys.readouterr().out
        assert "selection possible: no" in out

    def test_star_in_l(self, capsys):
        assert main(["analyze", "star", "3", "--model", "L"]) == 0
        out = capsys.readouterr().out
        assert "selection possible: yes" in out

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "moebius", "4"])


class TestOtherCommands:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 5" in out

    def test_hierarchy(self, capsys):
        assert main(["hierarchy"]) == 0
        out = capsys.readouterr().out
        assert "fair-S" in out and "L2" in out

    def test_dining_deadlock(self, capsys):
        assert main(["dining", "5", "--steps", "1500"]) == 0
        out = capsys.readouterr().out
        assert "deadlocked:          yes" in out

    def test_dining_alternating(self, capsys):
        assert main(["dining", "6", "--alternating", "--steps", "1500"]) == 0
        out = capsys.readouterr().out
        assert "everyone ate:        yes" in out

    def test_elect_randomized(self, capsys):
        assert main(["elect", "5", "--randomized", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Itai-Rodeh" in out and "leader" in out

    def test_elect_deterministic(self, capsys):
        assert main(["elect", "4"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAnalyzeFromFile:
    def test_json_file(self, tmp_path, capsys):
        from repro.io import dump
        from repro.topologies import figure2_system

        target = tmp_path / "sys.json"
        dump(figure2_system(), str(target))
        assert main(["analyze", "file", "--file", str(target)]) == 0
        out = capsys.readouterr().out
        assert "selection possible: yes" in out

    def test_file_without_path_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "file"])


class TestReport:
    def test_report_command(self, capsys):
        assert main(["report", "ring", "5", "--mark", "p0"]) == 0
        out = capsys.readouterr().out
        assert "system dossier" in out
        assert "renaming possible" in out


class TestExplain:
    def test_explain_command(self, capsys):
        assert main(["explain", "path", "4", "p0", "p3"]) == 0
        out = capsys.readouterr().out
        assert "split at round" in out

    def test_explain_similar_pair(self, capsys):
        assert main(["explain", "ring", "4", "p0", "p2"]) == 0
        out = capsys.readouterr().out
        assert "similar" in out
