"""Unit tests for topology builders."""

import pytest

from repro.exceptions import NetworkError
from repro.topologies import (
    alternating_ring,
    complete_bipartite,
    path,
    random_connected_network,
    random_network,
    ring,
    star,
    torus_grid,
)


class TestRing:
    def test_sizes(self):
        net = ring(5)
        assert len(net.processors) == 5
        assert len(net.variables) == 5

    def test_each_variable_has_left_and_right_user(self):
        net = ring(4)
        for v in net.variables:
            names = sorted(n for _p, n in net.neighbors_of_variable(v))
            assert names == ["left", "right"]

    def test_ring_of_one_self_loops(self):
        net = ring(1)
        assert net.n_nbr("p0", "left") == net.n_nbr("p0", "right")

    def test_invalid_size(self):
        with pytest.raises(NetworkError):
            ring(0)


class TestAlternatingRing:
    def test_forks_have_uniform_names(self):
        net = alternating_ring(6)
        for v in net.variables:
            names = {n for _p, n in net.neighbors_of_variable(v)}
            assert len(names) == 1  # both users agree on the fork's name

    def test_odd_size_rejected(self):
        with pytest.raises(NetworkError):
            alternating_ring(5)

    def test_half_left_half_right(self):
        net = alternating_ring(6)
        left = [v for v in net.variables
                if {n for _p, n in net.neighbors_of_variable(v)} == {"left"}]
        assert len(left) == 3


class TestStarAndPath:
    def test_star_shares_hub(self):
        net = star(4)
        assert len(net.variables) == 1
        assert net.degree("hub_var") == 4

    def test_path_boundary_variables(self):
        net = path(3)
        assert "v_left_end" in net.variables
        assert net.degree("v_left_end") == 1
        assert net.degree("v0") == 2

    def test_path_of_one(self):
        net = path(1)
        assert len(net.variables) == 2  # both boundaries


class TestCompleteBipartite:
    def test_shape(self):
        net = complete_bipartite(3, 2)
        assert len(net.processors) == 3
        assert len(net.variables) == 2
        assert net.degree("v0") == 3

    def test_connected(self):
        assert complete_bipartite(2, 2).is_connected


class TestTorusGrid:
    def test_counts(self):
        net = torus_grid(2, 3)
        assert len(net.processors) == 6
        assert len(net.variables) == 12  # horizontal + vertical per cell

    def test_connected(self):
        assert torus_grid(2, 2).is_connected


class TestRandom:
    def test_deterministic_by_seed(self):
        assert random_network(4, 3, seed=7) == random_network(4, 3, seed=7)
        assert random_network(4, 3, seed=7) != random_network(4, 3, seed=8)

    def test_connected_builder(self):
        net = random_connected_network(5, 4, seed=1)
        assert net.is_connected


class TestHypercube:
    def test_counts(self):
        from repro.topologies import hypercube

        net = hypercube(3)
        assert len(net.processors) == 8
        assert len(net.variables) == 12

    def test_fully_symmetric_and_unsolvable(self):
        from repro.core import InstructionSet, System, decide_selection, similarity_labeling
        from repro.topologies import hypercube

        system = System(hypercube(3), None, InstructionSet.Q)
        theta = similarity_labeling(system)
        assert len({theta[p] for p in system.processors}) == 1
        assert not decide_selection(system).possible

    def test_marked_cube_solvable(self):
        from repro.core import InstructionSet, System, decide_selection
        from repro.topologies import hypercube

        system = System(hypercube(2), {"p00": 1}, InstructionSet.Q)
        assert decide_selection(system).possible

    def test_invalid_dimension(self):
        import pytest as _pytest

        from repro.exceptions import NetworkError
        from repro.topologies import hypercube

        with _pytest.raises(NetworkError):
            hypercube(0)


class TestBinaryTree:
    def test_counts(self):
        from repro.topologies import binary_tree

        net = binary_tree(3)
        assert len(net.processors) == 7

    def test_all_positions_distinguishable(self):
        from repro.core import InstructionSet, System, similarity_labeling
        from repro.topologies import binary_tree

        system = System(binary_tree(3), None, InstructionSet.Q)
        theta = similarity_labeling(system)
        # Root unique; left/right children of one node differ (their up
        # variables are private names...); in fact all 7 are split by the
        # boundary structure.
        assert theta.class_size(theta["n0"]) == 1

    def test_connected(self):
        from repro.topologies import binary_tree

        assert binary_tree(3).is_connected
