"""Unit tests for dining-table helpers."""

import pytest

from repro.exceptions import NetworkError
from repro.topologies import adjacent_pairs, dining_system, forks, philosophers


class TestDiningSystem:
    def test_philosophers_and_forks(self):
        system = dining_system(5)
        assert len(philosophers(system)) == 5
        assert len(forks(system)) == 5

    def test_adjacent_pairs_form_a_cycle(self):
        system = dining_system(5)
        pairs = adjacent_pairs(system)
        assert len(pairs) == 5
        degree = {}
        for a, b in pairs:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        assert all(d == 2 for d in degree.values())

    def test_too_small_table_rejected(self):
        with pytest.raises(NetworkError):
            dining_system(1)

    def test_alternating_requires_even(self):
        with pytest.raises(NetworkError):
            dining_system(5, alternating=True)
