"""The figure systems behave exactly as the paper narrates."""

from repro.core import (
    EnvironmentModel,
    InstructionSet,
    decide_selection,
    similarity_labeling,
)
from repro.topologies import (
    figure1_system,
    figure2_system,
    figure3_system,
    figure4_system,
    figure5_system,
)


class TestFigure1:
    def test_p_q_similar_in_q(self, fig1_q):
        theta = similarity_labeling(fig1_q)
        assert theta["p"] == theta["q"]

    def test_no_selection_in_q_or_s(self):
        for iset in (InstructionSet.Q, InstructionSet.S):
            assert not decide_selection(figure1_system(iset)).possible

    def test_selection_in_l(self, fig1_l):
        assert decide_selection(fig1_l).possible


class TestFigure2:
    def test_two_processor_classes(self, fig2_q):
        theta = similarity_labeling(fig2_q)
        assert theta["p1"] == theta["p2"] != theta["p3"]

    def test_v1_not_similar_to_v2(self, fig2_q):
        theta = similarity_labeling(fig2_q)
        assert theta["v1"] != theta["v2"]

    def test_v3_has_three_neighbors(self, fig2_q):
        assert fig2_q.network.degree("v3") == 3


class TestFigure3:
    def test_all_processors_dissimilar(self, fig3_s):
        theta = similarity_labeling(fig3_s, model=EnvironmentModel.SET)
        assert len({theta[p] for p in fig3_s.processors}) == 3

    def test_p_does_not_see_v2(self, fig3_s):
        assert fig3_s.n_nbr("p", "a") == "v1"
        assert fig3_s.n_nbr("q", "a") == fig3_s.n_nbr("z", "a") == "v2"


class TestFigures45:
    def test_figure4_is_five_philosophers(self):
        assert len(figure4_system().processors) == 5

    def test_figure5_is_six_alternating(self):
        system = figure5_system()
        assert len(system.processors) == 6
        for v in system.variables:
            names = {n for _p, n in system.network.neighbors_of_variable(v)}
            assert len(names) == 1

    def test_both_are_distributed(self):
        assert figure4_system().network.is_distributed
        assert figure5_system().network.is_distributed
