"""Moderate-scale smoke: the analyses stay usable on bigger systems."""

import pytest

from repro.core import (
    InstructionSet,
    System,
    compute_similarity_labeling,
    decide_selection,
    quotient_system,
)
from repro.topologies import hypercube, ring, torus_grid


class TestLargeLabelings:
    def test_marked_ring_1000(self):
        system = System(ring(1000), {"p0": 1}, InstructionSet.Q)
        result = compute_similarity_labeling(system)
        assert len(result.labeling.labels) == 2000  # all nodes unique

    def test_anonymous_grid_8x8(self):
        system = System(torus_grid(8, 8), None, InstructionSet.Q)
        result = compute_similarity_labeling(system)
        # One processor class; variables split into horizontal vs vertical
        # edge classes (their writers use different name pairs).
        assert len(result.labeling.labels) == 3

    def test_hypercube_6(self):
        system = System(hypercube(6), None, InstructionSet.Q)
        result = compute_similarity_labeling(system)
        # One processor class; one variable class per dimension (edges of
        # dimension i are exactly the dim-i-named ones).
        assert len(result.labeling.labels) == 1 + 6

    def test_quotient_compression(self):
        system = System(torus_grid(6, 6), None, InstructionSet.Q)
        q = quotient_system(system)
        assert q.processor_class_count == 1
        assert q.variable_class_count == 2
        assert sum(s for _l, s, _st in q.pclasses) == 36


class TestLargeDecisions:
    def test_selection_decision_on_big_marked_ring(self):
        system = System(ring(300), {"p0": 1}, InstructionSet.Q)
        assert decide_selection(system).possible

    def test_selection_decision_on_big_anonymous_ring(self):
        system = System(ring(300), None, InstructionSet.Q)
        assert not decide_selection(system).possible
