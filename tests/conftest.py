"""Shared fixtures: the paper's figure systems and small helpers."""

import pytest

from repro.core import InstructionSet, ScheduleClass, System
from repro.topologies import (
    dining_system,
    figure1_system,
    figure2_system,
    figure3_system,
    path,
    ring,
)


@pytest.fixture
def fig1_q():
    return figure1_system(InstructionSet.Q)


@pytest.fixture
def fig1_l():
    return figure1_system(InstructionSet.L)


@pytest.fixture
def fig2_q():
    return figure2_system(InstructionSet.Q)


@pytest.fixture
def fig3_s():
    return figure3_system()


@pytest.fixture
def dp5_l():
    return dining_system(5, instruction_set=InstructionSet.L)


@pytest.fixture
def dp6_l():
    return dining_system(6, alternating=True, instruction_set=InstructionSet.L)


@pytest.fixture
def marked_ring5_q():
    """A 5-ring with one state-marked processor: every node unique."""
    return System(ring(5), {"p0": 1}, InstructionSet.Q)


@pytest.fixture
def path4_q():
    return System(path(4), None, InstructionSet.Q)


@pytest.fixture
def path4_s_bf():
    return System(path(4), None, InstructionSet.S, ScheduleClass.BOUNDED_FAIR)
