"""Fault-injection tests: the store under hostile filesystems.

The container runs as root (chmod does not block writes), so an
unwritable filesystem is simulated by making ``_write`` raise the
errno a read-only or full disk would.
"""

import json
import os
import threading

import pytest

from repro.store import ContentStore
from repro.store.gc import collect, usage


def _deny_writes(store, errno_=30, msg="Read-only file system (injected)"):
    def refuse(namespace, digest, key, value):
        raise OSError(errno_, msg)

    store._write = refuse


class TestReadOnlyRoot:
    def test_reads_still_served_when_writes_fail(self, tmp_path):
        root = str(tmp_path / "s")
        with ContentStore(root) as store:
            store.put("ns", b"old", {"v": 1})
        store = ContentStore(root)
        _deny_writes(store)
        assert store.get("ns", b"old") == {"v": 1}  # disk reads fine
        store.put("ns", b"new", {"v": 2})
        assert store.get("ns", b"new") == {"v": 2}  # staged reads fine
        with pytest.raises(OSError):
            store.flush()
        # The failed flush restaged everything; reads keep working.
        assert store.get("ns", b"new") == {"v": 2}
        assert store.get("ns", b"old") == {"v": 1}

    def test_auto_flush_failure_propagates_from_put(self, tmp_path):
        store = ContentStore(str(tmp_path / "s"), flush_every=2)
        _deny_writes(store)
        store.put("ns", b"a", {"v": 1})
        with pytest.raises(OSError):
            store.put("ns", b"b", {"v": 2})  # trips the auto-flush
        # Both entries survived the failure, staged.
        assert store.get("ns", b"a") == {"v": 1}
        assert store.get("ns", b"b") == {"v": 2}


class TestQuarantineMidIteration:
    def test_entries_skips_corruption_without_dying(self, tmp_path):
        root = str(tmp_path / "s")
        with ContentStore(root) as store:
            for i in range(6):
                store.put("ns", b"key-%d" % i, {"i": i})
            digest = store.address(b"key-3")
            path = os.path.join(root, "ns", digest[:2], digest + ".json")
        with open(path, "w") as fh:
            fh.write("{ half a json docum")
        with ContentStore(root) as store:
            seen = dict(store.entries("ns"))
            assert len(seen) == 5  # the damaged one is skipped...
            assert b"key-3" not in seen
            assert store.stats.quarantined == 1  # ...and quarantined
            assert not os.path.exists(path)

    def test_corruption_appearing_mid_iteration(self, tmp_path):
        """An entry corrupted after iteration starts (by a concurrent
        writer) is a skip, never an exception."""
        root = str(tmp_path / "s")
        with ContentStore(root) as store:
            for i in range(8):
                store.put("ns", b"key-%d" % i, {"i": i})
            paths = [
                os.path.join(
                    root, "ns", store.address(b"key-%d" % i)[:2],
                    store.address(b"key-%d" % i) + ".json",
                )
                for i in range(8)
            ]
        with ContentStore(root) as store:
            iterator = store.entries("ns")
            first = next(iterator)
            assert first is not None
            # Corrupt every entry not yet yielded.
            for path in paths:
                if os.path.exists(path):
                    with open(path, "w") as fh:
                        fh.write("garbage")
            rest = list(iterator)
            # The already-yielded entry may or may not be among the
            # damaged; what matters is: no exception, valid docs only.
            for _key, value in rest:
                assert isinstance(value, dict)


class TestGCConcurrentWithReader:
    def test_reader_sees_miss_never_crash_or_partial(self, tmp_path):
        """A reader hammering the store while GC evicts and compacts
        must only ever see a full document or a miss."""
        root = str(tmp_path / "s")
        keys = [b"key-%d" % i for i in range(40)]
        with ContentStore(root) as store:
            for i, key in enumerate(keys):
                store.put("ns", key, {"i": i, "pad": "x" * 30})

        stop = threading.Event()
        failures = []

        def reader():
            store = ContentStore(root)
            try:
                while not stop.is_set():
                    for i, key in enumerate(keys):
                        value = store.get("ns", key)
                        if value is not None and value["i"] != i:
                            failures.append((key, value))
            except Exception as exc:  # noqa: BLE001 - the assertion
                failures.append(exc)
            finally:
                store.close()

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            total = sum(u.bytes for u in usage(root).values())
            # Repeated passes with a shrinking cap: eviction + rewrite
            # races the reader every time.
            for divisor in (2, 3, 5):
                report = collect(root, max_bytes=total // divisor)
                assert report.quarantined == 0
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert failures == []

    def test_gc_racing_gc_is_harmless(self, tmp_path):
        """Two collectors over one root: files vanishing mid-walk are
        skipped, and both passes land under the cap."""
        root = str(tmp_path / "s")
        with ContentStore(root) as store:
            for i in range(30):
                store.put("ns", b"key-%d" % i, {"i": i, "pad": "x" * 30})
        total = sum(u.bytes for u in usage(root).values())
        cap = total // 3
        reports = [None, None]
        errors = []

        def run(slot):
            try:
                reports[slot] = collect(root, max_bytes=cap)
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(s,)) for s in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert sum(u.bytes for u in usage(root).values()) <= cap
        with ContentStore(root) as store:
            for key, value in store.entries("ns"):
                assert value == json.loads(json.dumps(value))  # complete
            assert store.stats.quarantined == 0
