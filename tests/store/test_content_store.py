"""Unit and cross-process tests for the content-addressed store."""

import json
import os
import subprocess
import sys

import pytest

from repro.store import ContentStore, NS_DECISIONS


class TestRoundTrip:
    def test_put_get_before_and_after_flush(self, tmp_path):
        with ContentStore(str(tmp_path / "s")) as store:
            key = b"some canonical form"
            assert store.get("ns", key) is None
            store.put("ns", key, {"answer": 42})
            # Staged writes are visible to the writer immediately.
            assert store.get("ns", key) == {"answer": 42}
            store.flush()
            assert store.get("ns", key) == {"answer": 42}
        # And to a completely fresh handle after close.
        with ContentStore(str(tmp_path / "s")) as store:
            assert store.get("ns", key) == {"answer": 42}
            assert store.stats.hits == 1

    def test_address_is_content_only(self, tmp_path):
        with ContentStore(str(tmp_path / "s")) as store:
            a = store.address(b"form-1")
            assert a == store.address(b"form-1")
            assert a != store.address(b"form-2")
            assert len(a) == 64 and bytes.fromhex(a)

    def test_entries_and_count(self, tmp_path):
        with ContentStore(str(tmp_path / "s")) as store:
            for i in range(5):
                store.put("ns", b"key-%d" % i, {"i": i})
        with ContentStore(str(tmp_path / "s")) as store:
            assert store.count("ns") == 5
            assert store.count("other") == 0
            seen = {key: value["i"] for key, value in store.entries("ns")}
            assert seen == {b"key-%d" % i: i for i in range(5)}

    def test_auto_flush_threshold(self, tmp_path):
        with ContentStore(str(tmp_path / "s"), flush_every=2) as store:
            store.put("ns", b"a", {"v": 1})
            store.put("ns", b"b", {"v": 2})  # trips the auto-flush
            assert store.stats.writes == 2


class TestStagedAliasing:
    def test_mutating_a_staged_get_does_not_corrupt_the_store(self, tmp_path):
        """A staged hit must be a copy: callers scribbling on the result
        must not rewrite what flush() later persists."""
        root = str(tmp_path / "s")
        with ContentStore(root) as store:
            store.put("ns", b"k", {"v": 1, "nested": {"tags": ["a"]}})
            seen = store.get("ns", b"k")  # staged hit
            seen["v"] = 999
            seen["nested"]["tags"].append("EVIL")
            store.flush()
        with ContentStore(root) as fresh:
            assert fresh.get("ns", b"k") == {"v": 1, "nested": {"tags": ["a"]}}

    def test_staged_copies_are_independent_per_get(self, tmp_path):
        with ContentStore(str(tmp_path / "s")) as store:
            store.put("ns", b"k", {"v": []})
            store.get("ns", b"k")["v"].append(1)
            assert store.get("ns", b"k") == {"v": []}


class TestFlushFailure:
    def test_failed_flush_restages_unwritten_entries(self, tmp_path):
        """A write failure mid-flush must not drop the unwritten tail:
        the failing entry and everything after it stay staged, and a
        retry (here: after healing the writer) persists all of them."""
        root = str(tmp_path / "s")
        store = ContentStore(root)
        for i in range(6):
            store.put("ns", b"key-%d" % i, {"i": i})

        real_write = store._write
        calls = {"n": 0}

        def fail_after_two(namespace, digest, key, value):
            if calls["n"] == 2:
                raise OSError(28, "No space left on device (injected)")
            calls["n"] += 1
            real_write(namespace, digest, key, value)

        store._write = fail_after_two
        with pytest.raises(OSError):
            store.flush()
        # Two made it to disk; the other four (including the one whose
        # write failed) are staged again — still readable, nothing lost.
        assert len(store._pending) == 4
        for i in range(6):
            assert store.get("ns", b"key-%d" % i) == {"i": i}

        store._write = real_write
        assert store.flush() == 4
        store.close()
        with ContentStore(root) as fresh:
            assert {k: v["i"] for k, v in fresh.entries("ns")} == {
                b"key-%d" % i: i for i in range(6)
            }

    def test_puts_during_failed_flush_survive_the_restage(self, tmp_path):
        """An entry staged between flush start and the failure (e.g. by
        a re-entrant caller) must not be clobbered by the restage."""
        store = ContentStore(str(tmp_path / "s"))
        store.put("ns", b"a", {"v": 1})

        def fail_and_stage(namespace, digest, key, value):
            store._pending[("ns", store.address(b"b"))] = (b"b", {"v": 2})
            raise OSError(30, "Read-only file system (injected)")

        store._write = fail_and_stage
        with pytest.raises(OSError):
            store.flush()
        assert store.get("ns", b"a") == {"v": 1}
        assert store.get("ns", b"b") == {"v": 2}


class TestMerge:
    def test_merge_on_flush_unions_concurrent_values(self, tmp_path):
        root = str(tmp_path / "s")

        def union(existing, new):
            return {"members": sorted(set(existing["members"]) | set(new["members"]))}

        a = ContentStore(root)
        b = ContentStore(root)
        a.register_merge("ns", union)
        b.register_merge("ns", union)
        a.put("ns", b"k", {"members": ["x"]})
        b.put("ns", b"k", {"members": ["y"]})
        a.flush()
        b.flush()  # reads a's value back and merges rather than clobbering
        a.close()
        b.close()
        with ContentStore(root) as fresh:
            assert fresh.get("ns", b"k") == {"members": ["x", "y"]}
            assert fresh.stats.hits == 1


class TestQuarantine:
    def _entry_path(self, store, ns, key):
        digest = store.address(key)
        return os.path.join(store.root, ns, digest[:2], digest + ".json")

    def _quarantine_files(self, store):
        qdir = os.path.join(store.root, "quarantine")
        return os.listdir(qdir) if os.path.isdir(qdir) else []

    @pytest.mark.parametrize(
        "damage",
        [b"{ this is not json", b"", b'{"key": "00", "namespace": "ns", "value"'],
        ids=["corrupt-json", "empty", "truncated"],
    )
    def test_damaged_entry_is_quarantined_not_fatal(self, tmp_path, damage):
        root = str(tmp_path / "s")
        with ContentStore(root) as store:
            store.put("ns", b"k", {"v": 1})
        with ContentStore(root) as store:
            path = self._entry_path(store, "ns", b"k")
            with open(path, "wb") as fh:
                fh.write(damage)
            assert store.get("ns", b"k") is None  # a miss, not an exception
            assert store.stats.quarantined == 1
            assert not os.path.exists(path)
            assert self._quarantine_files(store)

    def test_key_echo_mismatch_is_quarantined(self, tmp_path):
        root = str(tmp_path / "s")
        with ContentStore(root) as store:
            store.put("ns", b"k", {"v": 1})
        with ContentStore(root) as store:
            path = self._entry_path(store, "ns", b"k")
            doc = json.load(open(path))
            doc["key"] = b"other".hex()  # content no longer matches address
            with open(path, "w") as fh:
                json.dump(doc, fh)
            assert store.get("ns", b"k") is None
            assert store.stats.quarantined == 1

    def test_recompute_after_quarantine_repairs_the_entry(self, tmp_path):
        root = str(tmp_path / "s")
        with ContentStore(root) as store:
            store.put("ns", b"k", {"v": 1})
        with ContentStore(root) as store:
            with open(self._entry_path(store, "ns", b"k"), "w") as fh:
                fh.write("garbage")
            assert store.get("ns", b"k") is None
            store.put("ns", b"k", {"v": 2})
        with ContentStore(root) as store:
            assert store.get("ns", b"k") == {"v": 2}


_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.analysis.witness_engine import DecisionCache, SweepSpec, run_sweep
spec = SweepSpec(weaker="Q", stronger="L", max_processors=2,
                 max_names=2, max_variables=2)
result = run_sweep(spec, workers=1, store={root!r})
print(len(result.witnesses), result.stats.cache_misses)
"""

_READER = """
import sys
sys.path.insert(0, {src!r})
from repro.analysis.witness_engine import DecisionCache, SweepSpec, run_sweep
spec = SweepSpec(weaker="Q", stronger="L", max_processors=2,
                 max_names=2, max_variables=2)
result = run_sweep(spec, workers=1, store={root!r})
print(len(result.witnesses), result.stats.cache_misses)
"""


class TestCrossProcess:
    def test_two_processes_share_one_store(self, tmp_path):
        """A sweep in process B reuses every decision process A stored."""
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        src = os.path.abspath(src)
        root = str(tmp_path / "shared")

        first = subprocess.run(
            [sys.executable, "-c", _WRITER.format(src=src, root=root)],
            capture_output=True, text=True, check=True,
        )
        witnesses_a, misses_a = map(int, first.stdout.split())
        assert misses_a > 0  # cold: really computed something

        second = subprocess.run(
            [sys.executable, "-c", _READER.format(src=src, root=root)],
            capture_output=True, text=True, check=True,
        )
        witnesses_b, misses_b = map(int, second.stdout.split())
        assert witnesses_b == witnesses_a
        assert misses_b == 0  # warm replay: every decision came from disk

    def test_basic_value_crosses_processes(self, tmp_path):
        root = str(tmp_path / "shared")
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        script = (
            "import sys; sys.path.insert(0, {src!r});"
            "from repro.store import ContentStore;"
            "s = ContentStore({root!r}); s.put('ns', b'k', dict(v=7)); s.close()"
        ).format(src=src, root=root)
        subprocess.run([sys.executable, "-c", script], check=True)
        with ContentStore(root) as store:
            assert store.get("ns", b"k") == {"v": 7}
