"""Tests for the store garbage collector: usage, eviction, compaction."""

import json
import os

import pytest

from repro.obs import EventHub, StoreEvicted
from repro.store import ContentStore, StoreError
from repro.store.gc import check, collect, enforce_cap, usage


def _fill(root, count=10, namespace="ns", pad=40):
    with ContentStore(root) as store:
        for i in range(count):
            store.put(namespace, b"key-%d" % i, {"i": i, "pad": "x" * pad})
    return root


def _entry_path(store, namespace, key):
    digest = store.address(key)
    return os.path.join(store.root, namespace, digest[:2], digest + ".json")


def _age(store, namespace, key, mtime):
    os.utime(_entry_path(store, namespace, key), (mtime, mtime))


class TestUsage:
    def test_counts_entries_and_bytes_per_namespace(self, tmp_path):
        root = str(tmp_path / "s")
        with ContentStore(root) as store:
            store.put("a", b"k1", {"v": 1})
            store.put("a", b"k2", {"v": 2})
            store.put("b", b"k3", {"v": 3})
        report = usage(root)
        assert report["a"].entries == 2
        assert report["b"].entries == 1
        assert report["a"].bytes > 0
        total = sum(u.bytes for u in report.values())
        on_disk = sum(
            os.path.getsize(os.path.join(base, name))
            for base, _dirs, names in os.walk(root)
            for name in names
        )
        assert total == on_disk

    def test_empty_or_absent_root_is_empty(self, tmp_path):
        assert usage(str(tmp_path / "nope")) == {}


class TestEviction:
    def test_evicts_down_to_cap_and_survivors_stay_readable(self, tmp_path):
        root = _fill(str(tmp_path / "s"), count=20)
        total = sum(u.bytes for u in usage(root).values())
        cap = total // 2
        report = collect(root, max_bytes=cap)
        assert report.under_cap
        assert report.total_bytes_after <= cap
        assert report.evicted_entries > 0
        assert report.quarantined == 0
        # Every survivor is a complete, readable entry.
        with ContentStore(root) as store:
            survivors = list(store.entries("ns"))
            assert len(survivors) == report.after["ns"].entries
            for key, value in survivors:
                assert value["i"] == int(key.decode().split("-")[1])
            assert store.stats.quarantined == 0

    def test_eviction_is_lru_by_mtime(self, tmp_path):
        root = str(tmp_path / "s")
        with ContentStore(root) as store:
            for i in range(4):
                store.put("ns", b"key-%d" % i, {"i": i, "pad": "x" * 40})
            store.flush()
            # key-2 and key-3 are old; key-0 and key-1 recently used.
            _age(store, "ns", b"key-2", 1000.0)
            _age(store, "ns", b"key-3", 2000.0)
            _age(store, "ns", b"key-0", 3000.0)
            _age(store, "ns", b"key-1", 4000.0)
            sizes = usage(root)["ns"]
            cap = sizes.bytes - 1  # force eviction of exactly the oldest
        report = collect(root, max_bytes=cap)
        assert report.evicted_entries == 1
        with ContentStore(root) as store:
            assert store.get("ns", b"key-2") is None  # the oldest went
            for key in (b"key-0", b"key-1", b"key-3"):
                assert store.get("ns", key) is not None

    def test_dry_run_touches_nothing(self, tmp_path):
        root = _fill(str(tmp_path / "s"), count=10)
        before = usage(root)
        cap = sum(u.bytes for u in before.values()) // 2
        report = collect(root, max_bytes=cap, dry_run=True)
        assert report.dry_run
        assert report.evicted_entries > 0
        assert report.total_bytes_after <= cap  # the projection fits...
        after = usage(root)
        assert {ns: (u.entries, u.bytes) for ns, u in after.items()} == {
            ns: (u.entries, u.bytes) for ns, u in before.items()
        }  # ...but the disk is untouched

    def test_no_cap_means_compaction_only(self, tmp_path):
        root = _fill(str(tmp_path / "s"), count=5)
        report = collect(root)
        assert report.evicted_entries == 0
        assert usage(root)["ns"].entries == 5

    def test_emits_store_evicted_events(self, tmp_path):
        root = _fill(str(tmp_path / "s"), count=10)
        cap = sum(u.bytes for u in usage(root).values()) // 2
        hub = EventHub()
        seen = []

        class Sink:
            def on_event(self, event):
                seen.append(event)

        hub.attach(Sink())
        report = collect(root, max_bytes=cap, hub=hub)
        events = [e for e in seen if isinstance(e, StoreEvicted)]
        assert len(events) == 1
        assert events[0].namespace == "ns"
        assert events[0].evicted == report.evicted_entries
        assert events[0].remaining_entries == report.after["ns"].entries


class TestCompaction:
    def test_sweeps_stale_tmp_files(self, tmp_path):
        root = _fill(str(tmp_path / "s"), count=3)
        with ContentStore(root) as store:
            folder = os.path.dirname(_entry_path(store, "ns", b"key-0"))
        litter = os.path.join(folder, "deadbeef.12345.tmp")
        with open(litter, "w") as fh:
            fh.write("half-written")
        report = collect(root)
        assert report.removed_tmp == 1
        assert not os.path.exists(litter)

    def test_removes_emptied_shard_dirs(self, tmp_path):
        root = _fill(str(tmp_path / "s"), count=8)
        report = collect(root, max_bytes=1)  # evict everything
        assert report.evicted_entries == 8
        assert report.removed_dirs > 0
        assert not os.path.isdir(os.path.join(root, "ns"))

    def test_quarantines_corrupt_survivors(self, tmp_path):
        root = _fill(str(tmp_path / "s"), count=3)
        with ContentStore(root) as store:
            path = _entry_path(store, "ns", b"key-1")
        with open(path, "w") as fh:
            fh.write("{ not json")
        report = collect(root)
        assert report.quarantined == 1
        assert not os.path.exists(path)
        assert os.listdir(os.path.join(root, "quarantine"))
        with ContentStore(root) as store:
            assert store.get("ns", b"key-0") is not None
            assert store.get("ns", b"key-1") is None

    def test_rewrite_canonicalizes_but_preserves_mtime(self, tmp_path):
        root = _fill(str(tmp_path / "s"), count=1)
        with ContentStore(root) as store:
            path = _entry_path(store, "ns", b"key-0")
        doc = json.load(open(path))
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2)  # valid, but not canonical
        os.utime(path, (5000.0, 5000.0))
        report = collect(root)
        assert report.rewritten == 1
        assert os.stat(path).st_mtime == 5000.0  # LRU clock undisturbed
        with ContentStore(root) as store:
            assert store.get("ns", b"key-0") is not None


class TestEnforceCap:
    def test_flush_evicts_past_the_cap(self, tmp_path):
        root = str(tmp_path / "s")
        with ContentStore(root, max_bytes=300) as store:
            for i in range(12):
                store.put("ns", b"key-%d" % i, {"i": i, "pad": "x" * 40})
            store.flush()
            assert store.stats.evicted > 0
        total = sum(u.bytes for u in usage(root).values())
        assert total <= 300

    def test_under_cap_flush_is_a_no_op(self, tmp_path):
        root = str(tmp_path / "s")
        with ContentStore(root, max_bytes=10_000) as store:
            store.put("ns", b"k", {"v": 1})
            store.flush()
            assert enforce_cap(store) is None
            assert store.stats.evicted == 0

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(StoreError):
            ContentStore(str(tmp_path / "s"), max_bytes=0)


class TestCheck:
    def test_clean_store_is_ok(self, tmp_path):
        root = _fill(str(tmp_path / "s"), count=4)
        doc = check(root)
        assert doc["ok"]
        assert doc["namespaces"]["ns"]["entries"] == 4
        assert doc["quarantined_now"] == 0
        assert doc["quarantine_backlog"] == 0

    def test_corruption_fails_the_check_and_counts_backlog(self, tmp_path):
        root = _fill(str(tmp_path / "s"), count=4)
        with ContentStore(root) as store:
            path = _entry_path(store, "ns", b"key-2")
        with open(path, "w") as fh:
            fh.write("garbage")
        doc = check(root)
        assert not doc["ok"]
        assert doc["quarantined_now"] == 1
        # A second walk finds the pen populated but nothing new wrong.
        again = check(root)
        assert again["ok"]
        assert again["quarantine_backlog"] == 1
