"""Unit + property tests for p-alibi / v-alibi (Section 4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    LabelTables,
    PostRecord,
    p_alibi,
    records_of,
    v_alibi,
    v_alibi_powerset,
)
from repro.core import similarity_labeling
from repro.topologies import figure2_system


def fig2_tables():
    system = figure2_system()
    theta = similarity_labeling(system)
    return system, theta, LabelTables.from_labeled_system(system, theta)


class TestRecordsOf:
    def test_filters_non_records(self):
        r = PostRecord(frozenset({1}), "n")
        assert records_of([r, "junk", 42]) == (r,)

    def test_phase_filter(self):
        r1 = PostRecord(frozenset({1}), "n", phase=1)
        r2 = PostRecord(frozenset({1}), "n", phase=2)
        assert records_of([r1, r2], phase=1) == (r1,)

    def test_bundles_unpacked_one_per_phase(self):
        r1 = PostRecord(frozenset({1}), "n", phase=1)
        r2 = PostRecord(frozenset({2}), "n", phase=2)
        assert records_of([(r1, r2)], phase=2) == (r2,)
        assert len(records_of([(r1, r2)], phase=None)) == 1  # first match only


class TestVAlibiOnFigure2:
    def test_two_posts_rule_out_v2(self):
        system, theta, tables = fig2_tables()
        # v1 sees two n-posts: v2 (single n-neighbor) gets an alibi.
        posts = [
            PostRecord(frozenset(tables.plabels), "n"),
            PostRecord(frozenset(tables.plabels), "n"),
        ]
        alibis = v_alibi(posts, tables)
        assert theta["v2"] in alibis
        assert theta["v1"] not in alibis

    def test_empty_peek_rules_out_nothing(self):
        _, _, tables = fig2_tables()
        assert v_alibi([], tables) == set()

    def test_base_state_alibi(self):
        system, theta, tables = fig2_tables()
        # All figure-2 variables start at 0; a base of 1 indicts everyone.
        assert v_alibi([], tables, base=1) == set(tables.vlabels)
        assert v_alibi([], tables, base=0) == set()


class TestPAlibiOnFigure2:
    def test_kind1_via_vec(self):
        system, theta, tables = fig2_tables()
        # If my n-variable cannot be v1, I cannot be p1 (or p2).
        n_idx = tables.names.index("n")
        vec = [frozenset(tables.vlabels)] * 2
        vec[n_idx] = frozenset({theta["v2"]})
        observed = [None, None]
        alibis = p_alibi(vec, observed, frozenset(tables.plabels), tables)
        assert theta["p1"] in alibis
        assert theta["p3"] not in alibis

    def test_kind2_counting(self):
        system, theta, tables = fig2_tables()
        # p3 sees both p1-labeled processors post singletons on v3 (name m):
        # neighborhood_size(m, p1label, v3label) == 2 is reached, so p3
        # rules out p1's label.
        singleton = PostRecord(frozenset({theta["p1"]}), "m")
        m_idx = tables.names.index("m")
        observed = [(), ()]
        observed[m_idx] = (singleton, singleton)
        vec = [frozenset(tables.vlabels), frozenset(tables.vlabels)]
        pec = frozenset({theta["p1"], theta["p3"]})
        alibis = p_alibi(vec, observed, pec, tables)
        assert theta["p1"] in alibis

    def test_kind2_needs_uncertainty(self):
        system, theta, tables = fig2_tables()
        singleton = PostRecord(frozenset({theta["p1"]}), "m")
        m_idx = tables.names.index("m")
        observed = [(), ()]
        observed[m_idx] = (singleton, singleton)
        vec = [frozenset(tables.vlabels), frozenset(tables.vlabels)]
        pec = frozenset({theta["p3"]})  # already certain: |PEC| == 1
        alibis = p_alibi(vec, observed, pec, tables)
        assert theta["p1"] not in alibis


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_flow_v_alibi_equals_powerset(data):
    """The polynomial flow test and the paper's powerset test agree."""
    system, theta, tables = fig2_tables()
    plabels = sorted(tables.plabels, key=repr)
    n_posts = data.draw(st.integers(0, 4))
    posts = []
    for _ in range(n_posts):
        suspects = data.draw(
            st.frozensets(st.sampled_from(plabels), min_size=1, max_size=len(plabels))
        )
        name = data.draw(st.sampled_from(["n", "m"]))
        posts.append(PostRecord(suspects, name))
    assert v_alibi(posts, tables) == v_alibi_powerset(posts, tables)
