"""Integration tests: Algorithm 3 on homogeneous families."""

import pytest

from repro.algorithms import Algorithm3Program, family_tables
from repro.core import Family, InstructionSet, System
from repro.exceptions import FamilyError
from repro.runtime import Executor, RandomFairScheduler, RoundRobinScheduler
from repro.topologies import figure1_network, ring


def marked_ring_family(n=3):
    """Homogeneous family: a ring with the mark on different processors.

    All members are isomorphic, so the *family* has no selection
    algorithm...  but each member's labeling is learnable, which is what
    Algorithm 3 provides.
    """
    net = ring(n)
    members = [
        System(net, {f"p{i}": 1}, InstructionSet.Q) for i in range(n)
    ]
    return Family(members)


def figure1_family():
    net = figure1_network()
    return Family(
        [
            System(net, {"p": 0, "q": 1}, InstructionSet.Q),
            System(net, {"p": 1, "q": 0}, InstructionSet.Q),
        ]
    )


def run_algorithm3(family, member_idx, scheduler=None, max_steps=60_000):
    member = family.members[member_idx]
    program = Algorithm3Program(family)
    executor = Executor(
        member, program, scheduler or RoundRobinScheduler(member.processors)
    )
    for i in range(max_steps):
        executor.step()
        if all(
            Algorithm3Program.is_done(executor.local[p]) for p in member.processors
        ):
            break
    return {
        p: Algorithm3Program.learned_label(executor.local[p])
        for p in member.processors
    }


class TestFamilyTables:
    def test_requires_homogeneous(self):
        het = Family([System(ring(3)), System(ring(4))])
        with pytest.raises(FamilyError):
            family_tables(het)

    def test_pass1_is_stateless(self):
        t1, t2 = family_tables(figure1_family())
        assert not t1.include_state
        assert t2.include_state


class TestFigure1Family:
    @pytest.mark.parametrize("idx", [0, 1])
    def test_each_member_learns_its_version(self, idx):
        fam = figure1_family()
        learned = run_algorithm3(fam, idx)
        version = fam.member_labelings()[idx]
        assert learned == {p: version[p] for p in fam.members[idx].processors}

    def test_same_program_instance_works_on_both(self):
        fam = figure1_family()
        program = Algorithm3Program(fam)
        for idx, member in enumerate(fam.members):
            executor = Executor(member, program, RoundRobinScheduler(member.processors))
            for _ in range(40_000):
                executor.step()
                if all(Algorithm3Program.is_done(executor.local[p]) for p in member.processors):
                    break
            version = fam.member_labelings()[idx]
            for p in member.processors:
                assert Algorithm3Program.learned_label(executor.local[p]) == version[p]


class TestMarkedRingFamily:
    @pytest.mark.parametrize("idx", [0, 1, 2])
    def test_members_learn_labels(self, idx):
        fam = marked_ring_family(3)
        learned = run_algorithm3(fam, idx)
        version = fam.member_labelings()[idx]
        member = fam.members[idx]
        assert learned == {p: version[p] for p in member.processors}

    def test_random_schedule(self):
        fam = marked_ring_family(3)
        member = fam.members[0]
        learned = run_algorithm3(
            fam, 0, scheduler=RandomFairScheduler(member.processors, seed=5)
        )
        version = fam.member_labelings()[0]
        assert learned == {p: version[p] for p in member.processors}
