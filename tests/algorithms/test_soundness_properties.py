"""Soundness under fire: 'never terminates with a wrong answer'.

The paper's alibi soundness claim, property-tested: across random
systems, random schedules, and adversarial schedules, a labeler's
suspect set *always* contains the truth -- convergence may fail (fair S,
crashes), correctness may not.
"""

from hypothesis import assume, given, settings

from repro.algorithms import (
    Algorithm2Program,
    Algorithm2SProgram,
    LabelTables,
)
from repro.core import (
    EnvironmentModel,
    InstructionSet,
    ScheduleClass,
    compute_similarity_labeling,
)
from repro.runtime import Executor, KBoundedFairScheduler, RandomFairScheduler

from ..strategies import systems

SETTINGS = settings(max_examples=15, deadline=None)


def _no_multi_edges(system):
    for p in system.processors:
        nbrs = list(system.network.neighbors_of_processor(p).values())
        if len(set(nbrs)) != len(nbrs):
            return False
    return True


@SETTINGS
@given(systems(instruction_set=InstructionSet.Q, max_processors=4, max_variables=3))
def test_algorithm2_pec_always_contains_truth(system):
    assume(_no_multi_edges(system))
    theta = compute_similarity_labeling(system).labeling
    tables = LabelTables.from_labeled_system(system, theta)
    for scheduler in (
        RandomFairScheduler(system.processors, seed=1),
        KBoundedFairScheduler(system.processors, seed=2),
    ):
        executor = Executor(system, Algorithm2Program(tables), scheduler)
        for _ in range(600):
            executor.step()
            for p in system.processors:
                state = executor.local[p]
                assert theta[p] in state.pec
                # VEC soundness too: each named variable's true label stays.
                for i, name in enumerate(tables.names):
                    v = system.n_nbr(p, name)
                    assert theta[v] in state.vec[i]


@SETTINGS
@given(
    systems(
        instruction_set=InstructionSet.S,
        schedule_class=ScheduleClass.BOUNDED_FAIR,
        max_processors=4,
        max_variables=3,
    )
)
def test_s_labeler_pec_always_contains_truth(system):
    assume(_no_multi_edges(system))
    theta = compute_similarity_labeling(system, EnvironmentModel.SET).labeling
    tables = LabelTables.from_labeled_system(
        system, theta, model=EnvironmentModel.SET
    )
    program = Algorithm2SProgram(tables, bound_k=2 * len(system.processors))
    executor = Executor(
        system, program, RandomFairScheduler(system.processors, seed=3)
    )
    for _ in range(800):
        executor.step()
        for p in system.processors:
            state = executor.local[p]
            assert theta[p] in state.pec
            for i, name in enumerate(tables.names):
                v = system.n_nbr(p, name)
                assert theta[v] in state.vec[i]
