"""Unit + property tests for the exact-cover substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import exact_covers, exact_one_per_group, find_exact_cover


class TestExactCovers:
    def test_classic_instance(self):
        universe = {1, 2, 3, 4, 5, 6, 7}
        candidates = {
            "A": {1, 4, 7},
            "B": {1, 4},
            "C": {4, 5, 7},
            "D": {3, 5, 6},
            "E": {2, 3, 6, 7},
            "F": {2, 7},
        }
        covers = list(exact_covers(universe, candidates))
        assert frozenset({"B", "D", "F"}) in covers

    def test_no_cover(self):
        assert find_exact_cover({1, 2}, {"A": {1}}) is None

    def test_empty_universe_has_empty_cover(self):
        assert find_exact_cover(set(), {"A": {1}}) == frozenset()

    def test_candidates_outside_universe_ignored(self):
        cover = find_exact_cover({1}, {"A": {1, 99}, "B": {1}})
        assert cover == frozenset({"B"})

    def test_all_covers_enumerated(self):
        covers = set(exact_covers({1, 2}, {"A": {1}, "B": {2}, "C": {1, 2}}))
        assert covers == {frozenset({"A", "B"}), frozenset({"C"})}


class TestOnePerGroup:
    def test_theorem7_shape(self):
        groups = {
            "m1": {"x": 1, "y": 2},
            "m2": {"x": 1},
        }
        elite = exact_one_per_group(groups)
        assert elite == frozenset({"x"})

    def test_label_twice_in_member_excluded(self):
        groups = {"m1": {"x": 2}}
        assert exact_one_per_group(groups) is None

    def test_combination_needed(self):
        groups = {
            "m1": {"a": 1},
            "m2": {"a": 1, "c": 1},
            "m3": {"b": 1, "c": 1},
        }
        elite = exact_one_per_group(groups)
        assert elite == frozenset({"a", "b"})

    def test_odd_cycle_has_no_elite(self):
        groups = {
            "m1": {"a": 1, "c": 1},
            "m2": {"b": 1, "c": 1},
            "m3": {"a": 1, "b": 1},
        }
        assert exact_one_per_group(groups) is None


@settings(max_examples=60, deadline=None)
@given(
    st.dictionaries(
        st.integers(0, 3),
        st.dictionaries(st.sampled_from("abcd"), st.integers(1, 2), max_size=4),
        min_size=1,
        max_size=4,
    )
)
def test_one_per_group_is_sound(groups):
    elite = exact_one_per_group(groups)
    if elite is not None:
        for counts in groups.values():
            assert sum(counts.get(l, 0) for l in elite) == 1
