"""Unit + property tests for the max-flow substrate."""

from itertools import chain, combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import FlowNetwork, feasible_assignment, max_flow


class TestMaxFlow:
    def test_single_edge(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 5)
        assert max_flow(net, "s", "t") == 5

    def test_bottleneck(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 10)
        net.add_edge("a", "t", 3)
        assert max_flow(net, "s", "t") == 3

    def test_parallel_paths(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 2)
        net.add_edge("a", "t", 2)
        net.add_edge("s", "b", 3)
        net.add_edge("b", "t", 3)
        assert max_flow(net, "s", "t") == 5

    def test_disconnected(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 2)
        net.node("t")
        assert max_flow(net, "s", "t") == 0

    def test_classic_diamond(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 3)
        net.add_edge("s", "b", 2)
        net.add_edge("a", "b", 1)
        net.add_edge("a", "t", 2)
        net.add_edge("b", "t", 3)
        assert max_flow(net, "s", "t") == 5


class TestFeasibleAssignment:
    def test_simple_feasible(self):
        result = feasible_assignment([frozenset({"x"})], {"x": 1})
        assert result.feasible
        assert result.assignment == {0: "x"}

    def test_capacity_respected(self):
        result = feasible_assignment(
            [frozenset({"x"}), frozenset({"x"})], {"x": 1}
        )
        assert not result.feasible
        assert result.violated_bins == frozenset({"x"})

    def test_hall_violation_witness(self):
        items = [frozenset({"a", "b"}), frozenset({"a"}), frozenset({"b"})]
        caps = {"a": 1, "b": 1}
        result = feasible_assignment(items, caps)
        assert not result.feasible
        lab = result.violated_bins
        covered = sum(1 for it in items if it <= lab)
        assert covered > sum(caps.get(b, 0) for b in lab)

    def test_empty_allowed_set_infeasible(self):
        result = feasible_assignment([frozenset()], {"x": 5})
        assert not result.feasible

    def test_zero_capacity_bin(self):
        result = feasible_assignment([frozenset({"x"})], {"x": 0})
        assert not result.feasible
        assert "x" in result.violated_bins


def brute_force_feasible(items, caps):
    """Exponential reference: try all assignments."""

    def rec(i, remaining):
        if i == len(items):
            return True
        for b in items[i]:
            if remaining.get(b, 0) > 0:
                remaining[b] -= 1
                if rec(i + 1, remaining):
                    remaining[b] += 1
                    return True
                remaining[b] += 1
        return False

    return rec(0, dict(caps))


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.frozensets(st.sampled_from(["a", "b", "c"]), max_size=3),
        max_size=5,
    ),
    st.fixed_dictionaries(
        {"a": st.integers(0, 3), "b": st.integers(0, 3), "c": st.integers(0, 3)}
    ),
)
def test_flow_matches_brute_force(items, caps):
    result = feasible_assignment(items, caps)
    assert result.feasible == brute_force_feasible(items, caps)
    if not result.feasible:
        # The min-cut witness really is a Hall violation.
        lab = result.violated_bins
        covered = sum(1 for it in items if it <= lab)
        assert covered > sum(caps.get(b, 0) for b in lab)
