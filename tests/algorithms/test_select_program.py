"""End-to-end SELECT tests: Uniqueness and Stability across schedules."""

import pytest

from repro.algorithms import (
    select_program,
    select_program_family,
    select_program_l,
    select_program_q,
    select_program_s,
)
from repro.core import Family, InstructionSet, ScheduleClass, System
from repro.exceptions import SelectionError
from repro.runtime import verify_selection_program
from repro.topologies import (
    figure1_network,
    figure1_system,
    figure2_system,
    path,
    ring,
    star,
)


class TestSelectQ:
    def test_figure2_selects_p3_under_all_schedules(self, fig2_q):
        program = select_program_q(fig2_q)
        verdict = verify_selection_program(fig2_q, program, max_steps=30_000)
        assert verdict.all_ok
        assert verdict.winners == ("p3",)

    def test_marked_ring(self, marked_ring5_q):
        program = select_program_q(marked_ring5_q)
        verdict = verify_selection_program(marked_ring5_q, program, max_steps=60_000)
        assert verdict.all_ok
        assert len(verdict.winners) == 1

    def test_symmetric_system_rejected(self, fig1_q):
        with pytest.raises(SelectionError, match="Theorem 3"):
            select_program_q(fig1_q)


class TestSelectL:
    def test_figure1_l_unique_winner_per_schedule(self, fig1_l):
        program = select_program_l(fig1_l)
        verdict = verify_selection_program(fig1_l, program, max_steps=60_000)
        assert verdict.all_ok
        # Different schedules may crown different winners -- that is the
        # point of schedule-dependent selection.
        assert set(verdict.winners) <= {"p", "q"}

    def test_star_l(self):
        system = System(star(3), None, InstructionSet.L)
        program = select_program_l(system)
        verdict = verify_selection_program(system, program, max_steps=120_000)
        assert verdict.all_ok

    def test_dp5_rejected(self, dp5_l):
        with pytest.raises(SelectionError):
            select_program_l(dp5_l)


class TestSelectS:
    def test_path_bounded_fair(self, path4_s_bf):
        program = select_program_s(path4_s_bf)
        verdict = verify_selection_program(path4_s_bf, program, max_steps=60_000)
        assert verdict.all_ok
        assert len(verdict.winners) == 1

    def test_symmetric_rejected(self):
        system = System(ring(4), None, InstructionSet.S, ScheduleClass.BOUNDED_FAIR)
        with pytest.raises(SelectionError):
            select_program_s(system)


class TestSelectFamily:
    def test_family_program_covers_both_members(self):
        net = figure1_network()
        fam = Family(
            [
                System(net, {"p": 0, "q": 1}, InstructionSet.Q),
                System(net, {"p": 1, "q": 0}, InstructionSet.Q),
            ]
        )
        program = select_program_family(fam)
        for member in fam.members:
            verdict = verify_selection_program(member, program, max_steps=30_000)
            assert verdict.all_ok

    def test_family_without_elite_rejected(self):
        net = figure1_network()
        fam = Family([System(net, None, InstructionSet.Q)])
        with pytest.raises(SelectionError, match="Theorem 7"):
            select_program_family(fam)


class TestDispatch:
    def test_dispatch_q(self, fig2_q):
        assert select_program(fig2_q) is not None

    def test_dispatch_l(self, fig1_l):
        assert select_program(fig1_l) is not None

    def test_dispatch_bounded_s(self, path4_s_bf):
        assert select_program(path4_s_bf) is not None

    def test_dispatch_general_rejected(self):
        system = figure2_system().with_schedule_class(ScheduleClass.GENERAL)
        with pytest.raises(SelectionError, match="Theorem 1"):
            select_program(system)

    def test_dispatch_fair_s_on_path(self):
        # Paths have no mimicry, so even plain fairness admits selection.
        system = System(path(3), None, InstructionSet.S, ScheduleClass.FAIR)
        program = select_program(system)
        verdict = verify_selection_program(system, program, max_steps=60_000)
        assert verdict.all_ok


class TestSelectFairS:
    def test_figure3_selects_a_non_mimicker(self, fig3_s):
        from repro.algorithms import select_program_fair_s

        program = select_program_fair_s(fig3_s)
        verdict = verify_selection_program(fig3_s, program, max_steps=40_000)
        assert verdict.all_ok
        assert set(verdict.winners) <= {"q", "z"}

    def test_all_mimicking_rejected(self):
        from repro.algorithms import select_program_fair_s
        from repro.topologies import witness_bounded_s_vs_fair_s

        net, state, _desc = witness_bounded_s_vs_fair_s()
        system = System(net, state, InstructionSet.S, ScheduleClass.FAIR)
        with pytest.raises(SelectionError, match="mimics"):
            select_program_fair_s(system)

    def test_dispatch_fair_s_now_works(self, fig3_s):
        assert select_program(fig3_s) is not None

    def test_dispatch_fair_s_rejects_symmetric(self):
        system = System(ring(3), None, InstructionSet.S, ScheduleClass.FAIR)
        with pytest.raises(SelectionError):
            select_program(system)
