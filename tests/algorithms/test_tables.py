"""Unit tests for LabelTables."""

import pytest

from repro.algorithms import LabelTables
from repro.core import (
    Family,
    InstructionSet,
    Labeling,
    Network,
    System,
    similarity_labeling,
)
from repro.exceptions import LabelingError
from repro.topologies import figure2_system


class TestFromSystem:
    def test_figure2_tables(self, fig2_q):
        tables = LabelTables.from_system(fig2_q)
        theta = similarity_labeling(fig2_q)
        assert theta["p1"] in tables.plabels
        assert theta["v3"] in tables.vlabels
        # v3 has two m-neighbors labeled like p1 and one like p3.
        assert tables.neighborhood_size("m", theta["p1"], theta["v3"]) == 2
        assert tables.neighborhood_size("m", theta["p3"], theta["v3"]) == 1
        assert tables.neighborhood_size("n", theta["p3"], theta["v3"]) == 0

    def test_n_nbr_label(self, fig2_q):
        tables = LabelTables.from_system(fig2_q)
        theta = similarity_labeling(fig2_q)
        assert tables.n_nbr_label(theta["p1"], "n") == theta["v1"]
        assert tables.n_nbr_label(theta["p3"], "n") == theta["v2"]

    def test_state_filters(self):
        from repro.topologies import ring

        system = System(ring(4), {"p0": 1}, InstructionSet.Q)
        tables = LabelTables.from_system(system)
        marked = tables.plabels_with_state(1)
        assert len(marked) == 1

    def test_multi_edge_rejected(self):
        net = Network(("a", "b"), {"p": {"a": "v", "b": "v"}})
        with pytest.raises(LabelingError, match="names one variable twice"):
            LabelTables.from_system(System(net))

    def test_non_respecting_labeling_rejected(self, fig2_q):
        bogus = Labeling.trivial_subsimilarity(fig2_q.nodes)
        with pytest.raises(LabelingError):
            LabelTables.from_labeled_system(fig2_q, bogus)

    def test_include_state_false(self, fig2_q):
        tables = LabelTables.from_system(fig2_q, include_state=False)
        assert tables.plabels_with_state("anything") == tables.plabels


class TestFromFamily:
    def test_union_tables(self):
        from repro.topologies import figure1_network

        net = figure1_network()
        fam = Family(
            [
                System(net, {"p": 0, "q": 1}, InstructionSet.Q),
                System(net, {"p": 1, "q": 0}, InstructionSet.Q),
            ]
        )
        tables = LabelTables.from_family(fam)
        assert len(tables.plabels) == 2  # marked / unmarked
        assert len(tables.vlabels) == 1
