"""Integration tests: Algorithm 2 converges to Theta on many systems."""

import pytest
from hypothesis import assume, given, settings

from repro.algorithms import Algorithm2Program, LabelTables
from repro.core import InstructionSet, System, similarity_labeling
from repro.runtime import (
    Executor,
    KBoundedFairScheduler,
    RandomFairScheduler,
    RoundRobinScheduler,
)
from repro.topologies import (
    binary_tree,
    complete_bipartite,
    figure2_system,
    hypercube,
    path,
    ring,
    star,
    torus_grid,
)

from ..strategies import systems


def run_algorithm2(system, scheduler=None, max_steps=40_000):
    theta = similarity_labeling(system)
    tables = LabelTables.from_labeled_system(system, theta)
    program = Algorithm2Program(tables)
    executor = Executor(
        system, program, scheduler or RoundRobinScheduler(system.processors)
    )
    steps = None
    for i in range(max_steps):
        executor.step()
        if all(
            Algorithm2Program.is_done(executor.local[p]) for p in system.processors
        ):
            steps = i + 1
            break
    learned = {
        p: Algorithm2Program.learned_label(executor.local[p])
        for p in system.processors
    }
    return learned, {p: theta[p] for p in system.processors}, steps


class TestKnownSystems:
    def test_figure2(self, fig2_q):
        learned, truth, steps = run_algorithm2(fig2_q)
        assert learned == truth
        assert steps is not None

    def test_marked_ring(self, marked_ring5_q):
        learned, truth, steps = run_algorithm2(marked_ring5_q)
        assert learned == truth

    def test_path(self, path4_q):
        learned, truth, steps = run_algorithm2(path4_q)
        assert learned == truth

    def test_symmetric_star_stays_uncertain(self):
        """In a fully symmetric system every PEC is a singleton *already*
        (one label), so everyone trivially learns the shared label."""
        system = System(star(3), None, InstructionSet.Q)
        learned, truth, steps = run_algorithm2(system)
        assert learned == truth
        assert len(set(learned.values())) == 1

    def test_grid_with_mark(self):
        system = System(torus_grid(2, 2), {"p0_0": 1}, InstructionSet.Q)
        learned, truth, steps = run_algorithm2(system)
        assert learned == truth

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_fair_schedules(self, fig2_q, seed):
        learned, truth, steps = run_algorithm2(
            fig2_q, RandomFairScheduler(fig2_q.processors, seed=seed)
        )
        assert learned == truth

    @pytest.mark.parametrize("seed", [1, 2])
    def test_k_bounded_schedules(self, marked_ring5_q, seed):
        learned, truth, steps = run_algorithm2(
            marked_ring5_q, KBoundedFairScheduler(marked_ring5_q.processors, seed=seed)
        )
        assert learned == truth


class TestNeverWrong:
    """'Algorithm 2 never terminates with a wrong answer': even before
    convergence, each processor's PEC always contains its true label."""

    def test_pec_always_contains_truth(self, fig2_q):
        theta = similarity_labeling(fig2_q)
        tables = LabelTables.from_labeled_system(fig2_q, theta)
        program = Algorithm2Program(tables)
        executor = Executor(fig2_q, program, RoundRobinScheduler(fig2_q.processors))
        for _ in range(2000):
            executor.step()
            for p in fig2_q.processors:
                assert theta[p] in executor.local[p].pec


@settings(max_examples=12, deadline=None)
@given(systems(max_processors=4, max_variables=3))
def test_algorithm2_on_random_connected_systems(system):
    """Theorem 6 empirically: connected fair Q systems converge."""
    assume(system.network.is_connected)
    # Multi-edges (one variable under two names) are outside Algorithm 2's
    # bookkeeping; skip those systems.
    for p in system.processors:
        nbrs = list(system.network.neighbors_of_processor(p).values())
        assume(len(set(nbrs)) == len(nbrs))
    learned, truth, steps = run_algorithm2(system)
    assert steps is not None, "Algorithm 2 failed to converge"
    assert learned == truth


class TestTopologyMatrix:
    """Algorithm 2 across structurally diverse marked systems."""

    @pytest.mark.parametrize(
        "build",
        [
            pytest.param(lambda: System(torus_grid(2, 3), {"p0_0": 1}, InstructionSet.Q), id="grid-2x3"),
            pytest.param(lambda: System(hypercube(2), {"p00": 1}, InstructionSet.Q), id="cube-2"),
            pytest.param(lambda: System(binary_tree(3), None, InstructionSet.Q), id="tree-3"),
            pytest.param(lambda: System(complete_bipartite(3, 2), {"p0": 1}, InstructionSet.Q), id="complete-3x2"),
        ],
    )
    def test_learns_exact_labels(self, build):
        system = build()
        learned, truth, steps = run_algorithm2(system, max_steps=200_000)
        assert steps is not None
        assert learned == truth
