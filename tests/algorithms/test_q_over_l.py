"""The Q-over-L simulation as a standalone component.

"L is strictly more powerful than Q" has two halves; the easy half --
L can do whatever Q can -- is exercised here by lifting Q programs onto
locking systems and watching them behave.
"""

import pytest

from repro.algorithms import (
    Algorithm2Program,
    LabelTables,
    LiftedQProgram,
    lift,
)
from repro.algorithms.q_over_l import decode_variable, encode_variable, with_slot
from repro.core import InstructionSet, System, similarity_labeling
from repro.exceptions import ExecutionError
from repro.runtime import (
    Executor,
    FunctionalProgram,
    Internal,
    Peek,
    Post,
    RandomProgramQ,
    RoundRobinScheduler,
    run_until_cycle,
)
from repro.topologies import figure2_network, ring, star


class TestCodec:
    def test_roundtrip(self):
        value = encode_variable(2, ((1, "x"), (0, "y")))
        assert decode_variable(value) == (2, ((0, "y"), (1, "x")))

    def test_with_slot_replaces(self):
        records = ((0, "a"), (1, "b"))
        assert dict(with_slot(records, 0, "z")) == {0: "z", 1: "b"}
        assert dict(with_slot(records, 2, "c")) == {0: "a", 1: "b", 2: "c"}


def post_then_peek_program():
    """Post a constant, then peek forever, remembering the multiset."""

    def act(st):
        if st[0] == "post":
            return Post("hub", "HELLO")
        return Peek("hub")

    def step(st, a, r):
        if isinstance(a, Post):
            return ("peek", None)
        return ("peek", r[1])

    return FunctionalProgram(
        initial=lambda s0: ("post", None), action=act, step=step
    )


class TestLifting:
    def test_requires_locks(self):
        system = System(star(2), None, InstructionSet.Q)
        with pytest.raises(ExecutionError, match="locking"):
            lift(post_then_peek_program(), system)

    def test_posts_become_slot_writes(self):
        system = System(star(3), None, InstructionSet.L)
        program = lift(
            post_then_peek_program(), system, inner_initial_from_counts=False
        )
        executor = Executor(system, program, RoundRobinScheduler(system.processors))
        executor.run(400)
        for p in system.processors:
            inner = LiftedQProgram.inner_state(executor.local[p])
            assert inner is not None
            # Everyone eventually peeks all three posted subvalues.
            assert inner[1] == ("HELLO", "HELLO", "HELLO")

    def test_relabel_counts_distinct_per_variable(self):
        system = System(star(3), None, InstructionSet.L)
        program = lift(post_then_peek_program(), system, inner_initial_from_counts=False)
        executor = Executor(system, program, RoundRobinScheduler(system.processors))
        executor.run(400)
        counts = sorted(
            LiftedQProgram.relabel_counts(executor.local[p])[0][1]
            for p in system.processors
        )
        assert counts == [0, 1, 2]

    def test_random_q_program_runs_legally(self):
        """Arbitrary Q programs lift to legal, eventually-cycling L runs."""
        system = System(ring(4), None, InstructionSet.L)
        program = lift(
            RandomProgramQ(system.names, seed=5),
            system,
            inner_initial_from_counts=False,
        )
        executor = Executor(system, program, RoundRobinScheduler(system.processors))
        info = run_until_cycle(executor, max_samples=20_000)
        assert info.cycle_length >= 1

    def test_lifted_algorithm2_learns_labels(self):
        """Algorithm 2 for a Q system, lifted to L, still learns labels.

        The lifted run starts from the relabeled states, so the right
        reference labeling is the realized relabel-family member's.
        """
        from repro.core import relabel_family

        net = figure2_network()
        system_l = System(net, None, InstructionSet.L)
        family = relabel_family(system_l)
        union_tables = LabelTables.from_family(family)
        inner = Algorithm2Program(union_tables)
        program = lift(inner, system_l, inner_initial_from_counts=True)
        executor = Executor(system_l, program, RoundRobinScheduler(system_l.processors))
        for _ in range(60_000):
            executor.step()
            inners = [LiftedQProgram.inner_state(executor.local[p]) for p in system_l.processors]
            if all(i is not None and Algorithm2Program.is_done(i) for i in inners):
                break
        learned = {
            p: Algorithm2Program.learned_label(LiftedQProgram.inner_state(executor.local[p]))
            for p in system_l.processors
        }
        counts = {
            p: LiftedQProgram.relabel_counts(executor.local[p])
            for p in system_l.processors
        }
        realized = None
        for member, version in zip(family.members, family.member_labelings()):
            if all(member.state0(p).counts == counts[p] for p in system_l.processors):
                realized = version
        assert realized is not None
        assert learned == {p: realized[p] for p in system_l.processors}
