"""Tests for the S-variant labeler (bounded-fair vs fair behavior)."""

import pytest

from repro.algorithms import Algorithm2SProgram, LabelTables
from repro.core import (
    EnvironmentModel,
    InstructionSet,
    ScheduleClass,
    System,
    similarity_labeling,
)
from repro.runtime import Executor, KBoundedFairScheduler, RoundRobinScheduler
from repro.topologies import figure3_system, path, ring


def run_s_labeler(system, bound_k, scheduler=None, max_steps=60_000):
    theta = similarity_labeling(system, model=EnvironmentModel.SET)
    tables = LabelTables.from_labeled_system(system, theta, model=EnvironmentModel.SET)
    program = Algorithm2SProgram(tables, bound_k=bound_k)
    executor = Executor(
        system, program, scheduler or RoundRobinScheduler(system.processors)
    )
    converged = None
    for i in range(max_steps):
        executor.step()
        if all(
            Algorithm2SProgram.is_done(executor.local[p]) for p in system.processors
        ):
            converged = i + 1
            break
    learned = {
        p: Algorithm2SProgram.learned_label(executor.local[p])
        for p in system.processors
    }
    return learned, {p: theta[p] for p in system.processors}, converged


class TestBoundedFair:
    def test_path_converges(self, path4_s_bf):
        learned, truth, steps = run_s_labeler(path4_s_bf, bound_k=8)
        assert steps is not None
        assert learned == truth

    def test_marked_ring_converges(self):
        system = System(ring(4), {"p0": 1}, InstructionSet.S, ScheduleClass.BOUNDED_FAIR)
        learned, truth, steps = run_s_labeler(system, bound_k=8)
        assert learned == truth

    def test_k_bounded_scheduler(self, path4_s_bf):
        sched = KBoundedFairScheduler(path4_s_bf.processors, k=8, seed=3)
        learned, truth, steps = run_s_labeler(path4_s_bf, bound_k=8, scheduler=sched)
        assert learned == truth

    def test_figure3_converges_bounded(self):
        system = figure3_system(ScheduleClass.BOUNDED_FAIR)
        learned, truth, steps = run_s_labeler(system, bound_k=6)
        assert learned == truth


class TestFairWithoutBound:
    def test_figure3_p_stuck_without_bound(self):
        """Figure 3's point: p mimics q, so under plain fairness p can
        never learn its label -- only the bound makes silence informative."""
        system = figure3_system(ScheduleClass.FAIR)
        learned, truth, steps = run_s_labeler(system, bound_k=None, max_steps=20_000)
        assert steps is None  # p stays uncertain forever
        assert learned["p"] is None
        # ... while z (unique state) and q (sees z's records) do learn.
        assert learned["z"] == truth["z"]
        assert learned["q"] == truth["q"]

    def test_figure3_p_learns_with_bound(self):
        system = figure3_system(ScheduleClass.BOUNDED_FAIR)
        learned, truth, steps = run_s_labeler(system, bound_k=6)
        assert steps is not None
        assert learned == truth

    def test_path_learnable_even_without_bound(self, path4_s_bf):
        """Paths have no mimicry, so fairness alone suffices: narrowed
        singleton records eventually rule out the mid-chain labels."""
        learned, truth, steps = run_s_labeler(path4_s_bf, bound_k=None, max_steps=40_000)
        assert steps is not None
        assert learned == truth

    def test_never_wrong_even_when_stuck(self, path4_s_bf):
        theta = similarity_labeling(path4_s_bf, model=EnvironmentModel.SET)
        tables = LabelTables.from_labeled_system(path4_s_bf, theta)
        program = Algorithm2SProgram(tables, bound_k=None)
        executor = Executor(
            path4_s_bf, program, RoundRobinScheduler(path4_s_bf.processors)
        )
        for _ in range(3000):
            executor.step()
        for p in path4_s_bf.processors:
            assert theta[p] in executor.local[p].pec


class TestMergeWrites:
    """The grow-only gossip cell (see the module docstring)."""

    def test_writes_carry_observed_records(self):
        from repro.core import Network
        from repro.runtime import Executor, RoundRobinScheduler

        net = Network(("n0",), {"p0": {"n0": "v0"}, "p1": {"n0": "v0"}})
        system = System(net, {"p1": 1}, InstructionSet.S, ScheduleClass.BOUNDED_FAIR)
        theta = similarity_labeling(system, model=EnvironmentModel.SET)
        tables = LabelTables.from_labeled_system(system, theta, model=EnvironmentModel.SET)
        program = Algorithm2SProgram(tables, bound_k=4)
        executor = Executor(system, program, RoundRobinScheduler(system.processors))
        executor.run(200)
        # The shared cell ends up carrying records from BOTH writers.
        value = executor.vars["v0"].read()
        assert isinstance(value, frozenset)
        suspects_seen = {frozenset(r.suspects) for r in value}
        assert len(suspects_seen) >= 2

    def test_soundness_on_the_two_writer_race(self):
        """The exact shape the hypothesis test falsified before merging:
        differently-stated twins on one variable, random schedule."""
        from repro.core import Network
        from repro.runtime import Executor, RandomFairScheduler

        net = Network(("n0",), {"p0": {"n0": "v0"}, "p1": {"n0": "v0"}})
        system = System(net, {"p1": 1}, InstructionSet.S, ScheduleClass.BOUNDED_FAIR)
        theta = similarity_labeling(system, model=EnvironmentModel.SET)
        tables = LabelTables.from_labeled_system(system, theta, model=EnvironmentModel.SET)
        for seed in range(6):
            program = Algorithm2SProgram(tables, bound_k=4)
            executor = Executor(
                system, program, RandomFairScheduler(system.processors, seed=seed)
            )
            for _ in range(800):
                executor.step()
                for p in system.processors:
                    assert theta[p] in executor.local[p].pec, (seed, p)

    def test_absence_gate_blocks_many_writer_variables(self):
        from repro.algorithms.algorithm2_s import _absence_rule_applicable
        from repro.topologies import star

        system = System(star(3), None, InstructionSet.S, ScheduleClass.BOUNDED_FAIR)
        theta = similarity_labeling(system, model=EnvironmentModel.SET)
        tables = LabelTables.from_labeled_system(system, theta, model=EnvironmentModel.SET)
        # The hub has three same-name writers: the gate must refuse.
        assert not _absence_rule_applicable(frozenset(tables.vlabels), tables)
