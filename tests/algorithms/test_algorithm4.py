"""Integration tests: Algorithm 4 (relabel + family labeler) in L/L2."""

import pytest

from repro.algorithms import (
    Algorithm4Program,
    decode_variable,
    encode_variable,
)
from repro.core import InstructionSet, Network, System
from repro.runtime import (
    Executor,
    KBoundedFairScheduler,
    RandomFairScheduler,
    RoundRobinScheduler,
)
from repro.topologies import figure1_system, star


def run_algorithm4(system, scheduler=None, max_steps=120_000, extended=None):
    program = Algorithm4Program(system, extended=extended)
    executor = Executor(
        system, program, scheduler or RoundRobinScheduler(system.processors)
    )
    for i in range(max_steps):
        executor.step()
        if all(
            Algorithm4Program.is_done(executor.local[p]) for p in system.processors
        ):
            break
    learned = {
        p: Algorithm4Program.learned_label(executor.local[p])
        for p in system.processors
    }
    counts = {
        p: Algorithm4Program.relabel_counts(executor.local[p])
        for p in system.processors
    }
    return program, learned, counts


class TestCodec:
    def test_roundtrip(self):
        value = encode_variable(3, ((0, "rec"), (1, "other")))
        assert decode_variable(value) == (3, ((0, "rec"), (1, "other")))

    def test_raw_value_decodes_to_zero(self):
        assert decode_variable(0) == (0, ())
        assert decode_variable("anything") == (0, ())

    def test_slots_sorted(self):
        value = encode_variable(1, ((2, "b"), (0, "a")))
        assert decode_variable(value)[1] == ((0, "a"), (2, "b"))


class TestFigure1InL:
    def test_relabel_counts_are_a_permutation(self, fig1_l):
        _prog, learned, counts = run_algorithm4(fig1_l)
        got = sorted(c[0][1] for c in counts.values())
        assert got == [0, 1]

    def test_labels_match_realized_version(self, fig1_l):
        program, learned, counts = run_algorithm4(fig1_l)
        # Find which family member was realized and check against its
        # version labeling.
        fam = program.family
        versions = fam.member_labelings()
        realized = None
        for member, version in zip(fam.members, versions):
            if all(
                member.state0(p).counts == counts[p] for p in fig1_l.processors
            ):
                realized = version
        assert realized is not None
        assert learned == {p: realized[p] for p in fig1_l.processors}

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_schedules(self, fig1_l, seed):
        program, learned, counts = run_algorithm4(
            fig1_l, RandomFairScheduler(fig1_l.processors, seed=seed)
        )
        assert all(l is not None for l in learned.values())
        assert learned["p"] != learned["q"]  # lock race separated them


class TestStarInL:
    def test_three_leaves_all_separated(self):
        system = System(star(3), None, InstructionSet.L)
        _prog, learned, counts = run_algorithm4(system)
        assert len(set(learned.values())) == 3
        hub_counts = sorted(c[0][1] for c in counts.values())
        assert hub_counts == [0, 1, 2]

    def test_k_bounded_schedule(self):
        system = System(star(3), None, InstructionSet.L)
        _prog, learned, _counts = run_algorithm4(
            system, KBoundedFairScheduler(system.processors, seed=4)
        )
        assert len(set(learned.values())) == 3


class TestExtendedLocking:
    def test_swapped_pair_separated_in_l2(self):
        net = Network(
            ("a", "b"),
            {"p1": {"a": "v", "b": "w"}, "p2": {"a": "w", "b": "v"}},
        )
        system = System(net, None, InstructionSet.L2)
        _prog, learned, counts = run_algorithm4(system)
        assert learned["p1"] != learned["p2"]
        # The multi-lock winner read 0 at both variables.
        flat = {p: tuple(c for _n, c in counts[p]) for p in system.processors}
        assert sorted(flat.values()) == [(0, 0), (1, 1)]
