"""Tests for the renaming application."""

import pytest

from repro.applications import renaming_possible, run_renaming
from repro.core import InstructionSet, System
from repro.exceptions import SelectionError
from repro.runtime import KBoundedFairScheduler
from repro.topologies import path, ring, star


class TestDecision:
    def test_marked_ring_possible(self, marked_ring5_q):
        assert renaming_possible(marked_ring5_q)

    def test_path_possible(self, path4_q):
        assert renaming_possible(path4_q)

    def test_anonymous_ring_impossible(self):
        assert not renaming_possible(System(ring(4), None, InstructionSet.Q))

    def test_star_impossible(self):
        assert not renaming_possible(System(star(3), None, InstructionSet.Q))


class TestRun:
    def test_names_distinct_and_dense(self, marked_ring5_q):
        out = run_renaming(marked_ring5_q)
        assert out.distinct
        assert sorted(out.names.values()) == list(range(5))

    def test_path_renaming(self, path4_q):
        out = run_renaming(path4_q)
        assert out.distinct
        assert out.steps is not None

    def test_k_bounded_schedule(self, path4_q):
        out = run_renaming(
            path4_q, KBoundedFairScheduler(path4_q.processors, seed=2)
        )
        assert out.distinct

    def test_impossible_raises(self):
        with pytest.raises(SelectionError, match="renaming is impossible"):
            run_renaming(System(ring(3), None, InstructionSet.Q))

    def test_deterministic_names(self, marked_ring5_q):
        a = run_renaming(marked_ring5_q)
        b = run_renaming(marked_ring5_q)
        assert a.names == b.names
