"""Tests for Rabin-style coordinated choice."""

import pytest

from repro.applications import (
    coordinated_choice_possible,
    designated_alternative,
    run_choice_coordination,
)
from repro.core import InstructionSet, Network, System
from repro.exceptions import SelectionError
from repro.topologies import figure2_system


def symmetric_two_choices():
    """Two processors, two perfectly symmetric alternatives."""
    net = Network(
        ("a", "b"),
        {"p": {"a": "u", "b": "w"}, "q": {"a": "w", "b": "u"}},
    )
    return System(net, None, InstructionSet.Q)


class TestDecision:
    def test_figure2_choice_possible(self, fig2_q):
        assert coordinated_choice_possible(fig2_q, ["v1", "v2"])

    def test_symmetric_alternatives_impossible(self):
        system = symmetric_two_choices()
        assert not coordinated_choice_possible(system, ["u", "w"])
        with pytest.raises(SelectionError, match="randomization"):
            designated_alternative(system, ["u", "w"])

    def test_designated_is_deterministic(self, fig2_q):
        assert designated_alternative(fig2_q, ["v1", "v2"]) == designated_alternative(
            fig2_q, ["v2", "v1"]
        )


class TestRun:
    def test_all_marks_on_one_alternative(self, fig2_q):
        out = run_choice_coordination(fig2_q, ["v1", "v2"])
        assert out.agreed
        assert out.chosen is not None
        marked = [v for v, c in out.marks.items() if c > 0]
        assert marked == [out.chosen]

    def test_every_adjacent_processor_marked(self, fig2_q):
        out = run_choice_coordination(fig2_q, ["v1", "v2"])
        writers = {
            p for p, _n in fig2_q.network.neighbors_of_variable(out.chosen)
        }
        assert out.marks[out.chosen] == len(writers)

    def test_three_alternatives(self, fig2_q):
        out = run_choice_coordination(fig2_q, ["v1", "v2", "v3"])
        assert out.agreed


class TestRandomizedRescue:
    """Section 8: randomization solves what symmetry forbids."""

    def test_symmetric_alternatives_need_randomization(self):
        system = symmetric_two_choices()
        assert not coordinated_choice_possible(system, ["u", "w"])

    def test_randomized_choice_terminates_and_agrees(self):
        from repro.applications.choice_coordination import (
            randomized_choice_on_symmetric,
        )

        for seed in range(8):
            leader, choice = randomized_choice_on_symmetric(4, 2, seed=seed)
            assert 0 <= leader < 4
            assert choice in (0, 1)

    def test_choice_depends_on_coin(self):
        from repro.applications.choice_coordination import (
            randomized_choice_on_symmetric,
        )

        outcomes = {
            randomized_choice_on_symmetric(3, 2, seed=s)[1] for s in range(20)
        }
        assert outcomes == {0, 1}
