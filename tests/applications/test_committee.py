"""Tests for committee (k-of-n) selection."""

import pytest

from repro.applications import (
    committee_labels,
    committee_possible,
    run_committee,
)
from repro.core import InstructionSet, System
from repro.exceptions import SelectionError
from repro.topologies import figure2_system, path, ring, star


class TestDecision:
    def test_k_equals_class_size(self, fig2_q):
        # Figure 2 classes: {p1,p2} and {p3}.
        assert committee_possible(fig2_q, 1)
        assert committee_possible(fig2_q, 2)
        assert committee_possible(fig2_q, 3)

    def test_anonymous_ring_only_all_or_nothing(self):
        system = System(ring(4), None, InstructionSet.Q)
        assert committee_possible(system, 0)
        assert committee_possible(system, 4)
        for k in (1, 2, 3):
            assert not committee_possible(system, k)

    def test_path_any_k(self, path4_q):
        assert all(committee_possible(path4_q, k) for k in range(5))

    def test_labels_sum_correctly(self, fig2_q):
        labels = committee_labels(fig2_q, 2)
        assert labels is not None


class TestRun:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_exact_committee_size(self, fig2_q, k):
        out = run_committee(fig2_q, k)
        assert out.size_ok
        assert len(out.members) == k

    def test_committee_is_stable_class_union(self, fig2_q):
        out = run_committee(fig2_q, 2)
        assert set(out.members) == {"p1", "p2"}

    def test_impossible_k_raises(self):
        system = System(star(3), None, InstructionSet.Q)
        with pytest.raises(SelectionError):
            run_committee(system, 2)
