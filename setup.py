"""Setup shim (setup.cfg carries the metadata).

Packaging deliberately avoids pyproject.toml: its presence forces pip
into PEP 517 build isolation, which requires downloading setuptools --
impossible in offline environments.  With setup.py + setup.cfg only, a
plain ``pip install -e .`` uses the legacy non-isolated path and works
everywhere, online or off.
"""

from setuptools import setup

setup()
