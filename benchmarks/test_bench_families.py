"""EXP-T7 -- Theorem 7: family selection iff an ELITE set exists.

Families over the Figure-1 network with different marking patterns: the
exact-cover decision matches running Algorithm 3 end-to-end on each
member.
"""

from repro.algorithms import select_program_family
from repro.analysis import yesno
from repro.core import Family, InstructionSet, System, decide_family_selection
from repro.exceptions import SelectionError
from repro.runtime import verify_selection_program
from repro.topologies import figure1_network


def build_families():
    net = figure1_network()
    return {
        "marked-pair {01, 10}": Family(
            [
                System(net, {"p": 0, "q": 1}, InstructionSet.Q),
                System(net, {"p": 1, "q": 0}, InstructionSet.Q),
            ]
        ),
        "anonymous {00}": Family([System(net, None, InstructionSet.Q)]),
        "with-tie {01, 11}": Family(
            [
                System(net, {"p": 0, "q": 1}, InstructionSet.Q),
                System(net, {"p": 1, "q": 1}, InstructionSet.Q),
            ]
        ),
    }


def analyze_families():
    rows = []
    for name, family in build_families().items():
        decision = decide_family_selection(family)
        ran_ok = None
        if decision.possible:
            program = select_program_family(family)
            ran_ok = all(
                verify_selection_program(m, program, max_steps=40_000).all_ok
                for m in family.members
            )
        rows.append((name, yesno(decision.possible),
                     sorted(map(str, decision.elite)) if decision.elite else "-",
                     yesno(ran_ok) if ran_ok is not None else "-"))
    return rows


def test_family_selection_decisions(benchmark, show):
    rows = benchmark(analyze_families)
    verdicts = {name: possible for name, possible, _e, _r in rows}
    assert verdicts["marked-pair {01, 10}"] == "yes"
    assert verdicts["anonymous {00}"] == "no"
    # Algorithm 3 runs ok wherever selection is possible.
    assert all(r == "yes" for _n, p, _e, r in rows if p == "yes")
    show(
        ["family", "selection possible", "ELITE", "Algorithm 3 verified"],
        rows,
        title="EXP-T7  Theorem 7: homogeneous families in Q",
    )
