"""EXP-HIER -- the model-power hierarchy (Sections 6 and 9).

    fair S  <  bounded-fair S  <  Q  <  L  (<= L2)

One row per witness system; one column per model; the staircase of yes/no
entries is the paper's hierarchy, with each adjacent pair separated by
its witness.
"""

from repro.analysis import yesno
from repro.core import POWER_ORDER, selection_across_models
from repro.topologies import ALL_WITNESSES, path, ring


def hierarchy_table():
    rows = []
    cases = [("anonymous ring-4 (nothing works)", ring(4), None)]
    for (weaker, stronger), builder in sorted(ALL_WITNESSES.items(), key=repr):
        net, state, desc = builder()
        cases.append((f"{desc}  [{weaker} < {stronger}]", net, state))
    cases.append(("path-3 (everything works)", path(3), None))
    for name, net, state in cases:
        report = selection_across_models(net, state, name)
        assert report.respects_power_order(), name
        rows.append(
            (name,) + tuple(yesno(report.decisions[m].possible) for m in POWER_ORDER)
        )
    return rows


def test_hierarchy_table(benchmark, show):
    rows = benchmark.pedantic(hierarchy_table, rounds=1, iterations=1)
    by_name = {r[0]: r[1:] for r in rows}
    # Every adjacent separation appears in the table.
    for (weaker, stronger), builder in ALL_WITNESSES.items():
        _net, _state, desc = builder()
        row = by_name[f"{desc}  [{weaker} < {stronger}]"]
        decisions = dict(zip(POWER_ORDER, row))
        assert decisions[weaker] == "no" and decisions[stronger] == "yes"
    show(
        ["system"] + list(POWER_ORDER),
        rows,
        title="EXP-HIER  selection decisions across models",
    )


def searched_witnesses():
    from repro.analysis import smallest_witness

    rows = []
    for weaker, stronger in (("Q", "L"), ("bounded-fair-S", "Q"), ("L", "L2")):
        w = smallest_witness(weaker, stronger)
        rows.append(
            (
                f"{weaker} < {stronger}",
                w.describe() if w else "not found",
                len(w.system.network.processors) if w else "-",
            )
        )
    return rows


def test_automatic_witness_search(benchmark, show):
    """Exhaustive small-system search independently rediscovers the
    hand-built separations (and finds a smaller BF-S < Q witness than
    Figure 2)."""
    rows = benchmark.pedantic(searched_witnesses, rounds=1, iterations=1)
    assert all(desc != "not found" for _p, desc, _n in rows)
    show(
        ["separation", "smallest witness found", "|P|"],
        rows,
        title="EXP-HIER  witnesses found by exhaustive search",
    )
