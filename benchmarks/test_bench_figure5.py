"""EXP-F5 -- Figure 5 and DP' (six dining philosophers).

Paper claims: alternate philosophers turn their backs, so each fork is
shared under a single name; all philosophers remain symmetric, yet
adjacent ones can be made dissimilar (6 is composite, Theorem 11 does not
bite), and a distributed symmetric deterministic solution exists.
"""

from repro.analysis import yesno
from repro.baselines import LeftFirstDiningProgram, run_dining
from repro.core import (
    can_break_symmetry,
    is_symmetric_system,
    relabel_family,
)
from repro.runtime import RandomFairScheduler, RoundRobinScheduler
from repro.topologies import adjacent_pairs, figure5_system


def analyze_dp6():
    system = figure5_system()  # L, alternating
    symmetric = is_symmetric_system(system)
    breaks = can_break_symmetry(system)
    family = relabel_family(system)
    pairs = adjacent_pairs(system)
    adjacent_dissimilar = all(
        version[a] != version[b]
        for version in family.member_labelings()
        for a, b in pairs
    )
    runs = {
        "round-robin": run_dining(
            system,
            LeftFirstDiningProgram(),
            RoundRobinScheduler(system.processors),
            steps=6_000,
            adjacent=pairs,
        ),
        "random-fair": run_dining(
            system,
            LeftFirstDiningProgram(),
            RandomFairScheduler(system.processors, seed=4),
            steps=6_000,
            adjacent=pairs,
        ),
    }
    return symmetric, breaks, len(family), adjacent_dissimilar, runs


def test_dp6_solution_chain(benchmark, show):
    symmetric, breaks, versions, adjacent_dissimilar, runs = benchmark(analyze_dp6)
    assert symmetric
    assert breaks  # locking on same-named forks breaks graph symmetry
    assert adjacent_dissimilar
    for run in runs.values():
        assert run.safety_ok and not run.deadlocked and run.everyone_ate
    show(
        ["claim", "holds"],
        [
            ("system is distributed + symmetric", yesno(symmetric)),
            ("L can break the symmetry (shared fork names)", yesno(breaks)),
            (f"adjacent philosophers dissimilar in all {versions} relabel versions", yesno(adjacent_dissimilar)),
            ("left-first program: everyone eats (round-robin)", yesno(runs["round-robin"].everyone_ate)),
            ("left-first program: everyone eats (random-fair)", yesno(runs["random-fair"].everyone_ate)),
            ("eating exclusion never violated", yesno(all(r.safety_ok for r in runs.values()))),
        ],
        title="EXP-F5  Figure 5 / DP': six philosophers, alternating orientation",
    )
