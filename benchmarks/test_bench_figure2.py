"""EXP-F2 -- Figure 2 ("Complicated Alibis").

Paper narrative: p1 ~ p2, p1 !~ p3; p1/p2 learn v1 has two neighbors
(alibi for Theta(v2) hence Theta(p3)); p3 learns its label from the two
singleton posts on v3 (the kind-2 alibi).  Algorithm 2 lets every
processor learn its label under every fair schedule.
"""

from repro.algorithms import Algorithm2Program, LabelTables
from repro.core import similarity_labeling
from repro.runtime import Executor, standard_schedules
from repro.topologies import figure2_system


def run_to_convergence(scheduler_name, scheduler):
    system = figure2_system()
    theta = similarity_labeling(system)
    tables = LabelTables.from_labeled_system(system, theta)
    executor = Executor(system, Algorithm2Program(tables), scheduler)
    steps = None
    order = []
    done = set()
    for i in range(50_000):
        executor.step()
        for p in system.processors:
            if p not in done and Algorithm2Program.is_done(executor.local[p]):
                done.add(p)
                order.append(p)
        if len(done) == len(system.processors):
            steps = i + 1
            break
    correct = all(
        Algorithm2Program.learned_label(executor.local[p]) == theta[p]
        for p in system.processors
    )
    return scheduler_name, steps, correct, tuple(order)


def all_schedules():
    return [run_to_convergence(name, sched) for name, sched in standard_schedules(figure2_system())]


def test_figure2_algorithm2_convergence(benchmark, show):
    results = benchmark(all_schedules)
    assert all(correct for _n, _s, correct, _o in results)
    assert all(steps is not None for _n, steps, _c, _o in results)
    # p3 is never the first to learn: it needs p1/p2's singleton posts.
    for _name, _steps, _correct, order in results:
        assert order[0] != "p3"
    show(
        ["schedule", "steps to all-labeled", "labels correct", "learning order"],
        [(n, s, c, " ".join(o)) for n, s, c, o in results],
        title="EXP-F2  Figure 2: Algorithm 2 learns all labels",
    )
