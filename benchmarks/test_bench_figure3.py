"""EXP-F3 -- Figure 3 (a fair system in S).

Paper claims: dissimilar processors cannot necessarily distinguish
themselves under plain fairness; p mimics q, so no distributed algorithm
lets p learn its label -- while under bounded fairness (where silence is
informative) everything is learnable.
"""

from repro.algorithms import Algorithm2SProgram, LabelTables
from repro.analysis import yesno
from repro.core import (
    EnvironmentModel,
    ScheduleClass,
    mimicry_relation,
    similarity_labeling,
)
from repro.runtime import Executor, RoundRobinScheduler
from repro.topologies import figure3_system


def labeler_outcome(bound_k, max_steps=30_000):
    system = figure3_system(ScheduleClass.BOUNDED_FAIR)
    theta = similarity_labeling(system, model=EnvironmentModel.SET)
    tables = LabelTables.from_labeled_system(system, theta, model=EnvironmentModel.SET)
    program = Algorithm2SProgram(tables, bound_k=bound_k)
    executor = Executor(system, program, RoundRobinScheduler(system.processors))
    for _ in range(max_steps):
        executor.step()
        if all(Algorithm2SProgram.is_done(executor.local[p]) for p in system.processors):
            break
    return {
        p: Algorithm2SProgram.learned_label(executor.local[p])
        for p in system.processors
    }, theta


def analyze():
    system = figure3_system()
    relation = mimicry_relation(system)
    bounded, theta = labeler_outcome(bound_k=6)
    fair, _ = labeler_outcome(bound_k=None)
    return relation, bounded, fair, theta


def test_figure3_mimicry_and_learnability(benchmark, show):
    relation, bounded, fair, theta = benchmark(analyze)
    # p mimics q: the fair-S obstruction.
    assert "q" in relation["p"]
    # Bounded fairness: everyone learns.
    assert all(bounded[p] == theta[p] for p in ("p", "q", "z"))
    # Plain fairness: p stays uncertain, exactly as the paper warns.
    assert fair["p"] is None
    assert fair["q"] == theta["q"] and fair["z"] == theta["z"]
    show(
        ["processor", "mimics", "learns label (bounded-fair)", "learns label (fair)"],
        [
            (p, " ".join(sorted(relation[p])) or "-", yesno(bounded[p] is not None), yesno(fair[p] is not None))
            for p in ("p", "q", "z")
        ],
        title="EXP-F3  Figure 3: mimicry blocks label learning under plain fairness",
    )
