"""EXP-MP -- Section 6: message-passing models.

Uni- vs bidirectional similarity, the learnability obstruction for
unidirectional non-strongly-connected systems, and the CSP analogy
(extended CSP : async bidirectional :: L : Q).
"""

from repro.analysis import yesno
from repro.messaging import (
    bidirectional_ring,
    decide_selection_extended_csp,
    decide_selection_plain_csp,
    labels_learnable,
    mp_selection_possible,
    mp_similarity_labeling,
    run_mp_labeler,
    unidirectional_chain,
    unidirectional_ring,
)


def mp_table():
    systems = {
        "anonymous uni-ring-5": unidirectional_ring(5),
        "marked uni-ring-5": unidirectional_ring(5, states={0: 1}),
        "anonymous bi-ring-4": bidirectional_ring(4),
        "uni-chain-4": unidirectional_chain(4),
        "bi-ring-2 (linked pair)": bidirectional_ring(2),
    }
    rows = []
    for name, mp in systems.items():
        theta = mp_similarity_labeling(mp)
        rows.append(
            (
                name,
                len(theta.labels),
                yesno(mp_selection_possible(mp)),
                yesno(labels_learnable(mp)),
                yesno(decide_selection_plain_csp(mp)),
                yesno(decide_selection_extended_csp(mp)),
            )
        )
    return rows


def test_message_passing_models(benchmark, show):
    rows = benchmark(mp_table)
    by_name = {r[0]: r for r in rows}
    # Anonymous rings: all similar, no async selection; but the linked
    # pair is solvable in extended CSP (rendezvous race = lock race).
    assert by_name["anonymous uni-ring-5"][2] == "no"
    assert by_name["marked uni-ring-5"][2] == "yes"
    assert by_name["bi-ring-2 (linked pair)"][5] == "yes"
    assert by_name["bi-ring-2 (linked pair)"][4] == "no"  # plain CSP cannot
    # The fair-S-like obstruction: chains are not learnable.
    assert by_name["uni-chain-4"][3] == "no"
    assert by_name["anonymous uni-ring-5"][3] == "yes"
    show(
        ["system", "classes", "async selection", "labels learnable", "plain CSP", "extended CSP"],
        rows,
        title="EXP-MP  Section 6: message-passing and CSP",
    )


def labeler_rows():
    cases = {
        "marked uni-ring-6": unidirectional_ring(6, states={0: 1}),
        "marked bi-ring-5": bidirectional_ring(5, states={0: 1}),
        "uni-chain-4": unidirectional_chain(4),
    }
    rows = []
    for name, mp in cases.items():
        out = run_mp_labeler(mp)
        rows.append(
            (
                name,
                yesno(out.all_correct),
                ",".join(map(str, out.uncertain)) or "-",
                out.deliveries,
            )
        )
    return rows


def test_mp_distributed_labeler(benchmark, show):
    """The flood-my-suspects labeler converges exactly where Section 6
    promises and stalls exactly at the unidirectional obstruction."""
    rows = benchmark(labeler_rows)
    by_name = {r[0]: r for r in rows}
    assert by_name["marked uni-ring-6"][1] == "yes"
    assert by_name["marked bi-ring-5"][1] == "yes"
    assert by_name["uni-chain-4"][1] == "no"
    assert "p0" in by_name["uni-chain-4"][2]
    show(
        ["system", "all labels learned", "stuck processors", "deliveries"],
        rows,
        title="EXP-MP  distributed label learning over channels",
    )


def race_distribution():
    from repro.messaging import run_pair_race

    counts = {"p0": 0, "p1": 0}
    for seed in range(40):
        winner = run_pair_race(bidirectional_ring(2), seed=seed)[0]
        counts[winner] += 1
    return counts


def test_extended_csp_rendezvous_race(benchmark, show):
    """The runnable half of the CSP analogy: one rendezvous commits, its
    sender leads; either side can win -- extended CSP encapsulates the
    asymmetry just as a lock does."""
    counts = benchmark.pedantic(race_distribution, rounds=1, iterations=1)
    assert counts["p0"] > 0 and counts["p1"] > 0
    assert counts["p0"] + counts["p1"] == 40
    show(
        ["winner", "races won (of 40 seeds)"],
        sorted(counts.items()),
        title="EXP-MP  extended-CSP rendezvous race on a linked pair",
    )
