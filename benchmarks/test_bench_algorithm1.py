"""EXP-T45 -- Theorems 4-5: Algorithm 1 correctness and scaling.

Theorem 5 promises an O(n log n) algorithm.  We time the worklist engine
against the naive signature engine across growing marked rings and random
systems; the shape to observe is near-linear growth for the worklist
engine on rings (whose labelings are maximally fine, the worst case for
split counts).
"""

import time

import pytest

from repro.core import InstructionSet, System, algorithm1_signatures, algorithm1_worklist
from repro.topologies import random_connected_network, ring


def marked_ring(n):
    return System(ring(n), {"p0": 1}, InstructionSet.Q)


def scaling_table(sizes):
    rows = []
    for n in sizes:
        system = marked_ring(n)
        t0 = time.perf_counter()
        worklist = algorithm1_worklist(system)
        t1 = time.perf_counter()
        signatures = algorithm1_signatures(system)
        t2 = time.perf_counter()
        assert worklist.labeling.same_partition(signatures.labeling)
        rows.append(
            (
                n,
                len(worklist.labeling.labels),
                worklist.stats.splits,
                f"{(t1 - t0) * 1000:.1f}",
                f"{(t2 - t1) * 1000:.1f}",
            )
        )
    return rows


def test_scaling_on_marked_rings(benchmark, show):
    rows = benchmark.pedantic(scaling_table, args=([25, 50, 100, 200, 400],), rounds=1, iterations=1)
    # All nodes unique on a marked ring: classes = 2n.
    assert all(classes == 2 * n for n, classes, *_ in rows)
    show(
        ["ring size n", "classes", "worklist splits", "worklist ms", "signature ms"],
        rows,
        title="EXP-T45  Algorithm 1 scaling (marked rings; all 2n nodes unique)",
    )


@pytest.mark.parametrize("n", [50, 200])
def test_worklist_engine_speed(benchmark, n):
    system = marked_ring(n)
    result = benchmark(lambda: algorithm1_worklist(system))
    assert len(result.labeling.labels) == 2 * n


def test_random_system_speed(benchmark):
    net = random_connected_network(60, 30, names=("a", "b"), seed=3)
    system = System(net, {"p0": 1}, InstructionSet.Q)
    result = benchmark(lambda: algorithm1_worklist(system))
    assert result.stats.classes >= 2
