"""EXP-T89 -- Theorems 8-9: selection in L via relabel + Algorithm 4.

Decision table for L systems plus an end-to-end SELECT run wherever
possible; the relabel family sizes show the versions the ELITE loop
covers.
"""

from repro.algorithms import select_program_l
from repro.analysis import yesno
from repro.core import InstructionSet, System, decide_selection, relabel_family
from repro.runtime import verify_selection_program
from repro.topologies import dining_system, figure1_system, star


def l_systems():
    return {
        "figure-1 (shared variable)": figure1_system(InstructionSet.L),
        "star-3 (shared hub)": System(star(3), None, InstructionSet.L),
        "DP-5 ring": dining_system(5, instruction_set=InstructionSet.L),
        "DP-6 alternating": dining_system(6, alternating=True, instruction_set=InstructionSet.L),
    }


def analyze_l():
    rows = []
    for name, system in l_systems().items():
        decision = decide_selection(system)
        versions = len(relabel_family(system).member_labelings())
        verified = "-"
        if decision.possible:
            program = select_program_l(system)
            verdict = verify_selection_program(system, program, max_steps=200_000)
            verified = yesno(verdict.all_ok)
        rows.append((name, versions, yesno(decision.possible), verified))
    return rows


def test_selection_in_l(benchmark, show):
    rows = benchmark.pedantic(analyze_l, rounds=1, iterations=1)
    verdicts = {name: possible for name, _v, possible, _ok in rows}
    assert verdicts["figure-1 (shared variable)"] == "yes"
    assert verdicts["star-3 (shared hub)"] == "yes"
    assert verdicts["DP-5 ring"] == "no"
    assert verdicts["DP-6 alternating"] == "no"
    assert all(ok == "yes" for _n, _v, p, ok in rows if p == "yes")
    show(
        ["system", "relabel versions", "selection possible", "Algorithm 4 verified"],
        rows,
        title="EXP-T89  Theorems 8-9: selection for systems in L",
    )
