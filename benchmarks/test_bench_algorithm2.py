"""EXP-T6 -- Theorem 6: Algorithm 2 converges on connected fair systems.

Measures steps-to-convergence of the distributed labeler as the system
grows: marked rings (labels must propagate all the way around, so rounds
grow with n) and paths (information flows from both ends).
"""

from repro.algorithms import Algorithm2Program, LabelTables
from repro.core import InstructionSet, System, similarity_labeling
from repro.runtime import Executor, RoundRobinScheduler
from repro.topologies import path, ring


def converge(system, max_steps=1_000_000):
    theta = similarity_labeling(system)
    tables = LabelTables.from_labeled_system(system, theta)
    executor = Executor(
        system, Algorithm2Program(tables), RoundRobinScheduler(system.processors)
    )
    for i in range(max_steps):
        executor.step()
        if all(Algorithm2Program.is_done(executor.local[p]) for p in system.processors):
            ok = all(
                Algorithm2Program.learned_label(executor.local[p]) == theta[p]
                for p in system.processors
            )
            return i + 1, ok
    return None, False


def convergence_table():
    rows = []
    for n in (3, 5, 8, 12):
        steps, ok = converge(System(ring(n), {"p0": 1}, InstructionSet.Q))
        rows.append((f"marked ring {n}", n, steps, ok, round(steps / n, 1)))
    for n in (3, 5, 8, 12):
        steps, ok = converge(System(path(n), None, InstructionSet.Q))
        rows.append((f"path {n}", n, steps, ok, round(steps / n, 1)))
    return rows


def test_algorithm2_convergence_growth(benchmark, show):
    rows = benchmark.pedantic(convergence_table, rounds=1, iterations=1)
    assert all(ok for _d, _n, _s, ok, _r in rows)
    # Steps grow with distance-to-the-mark: monotone in n per topology.
    ring_steps = [s for d, _n, s, _ok, _r in rows if d.startswith("marked ring")]
    assert ring_steps == sorted(ring_steps)
    show(
        ["system", "n", "steps to all-labeled", "correct", "steps per processor"],
        rows,
        title="EXP-T6  Algorithm 2 convergence (round-robin)",
    )


def test_algorithm2_single_run_speed(benchmark):
    system = System(ring(8), {"p0": 1}, InstructionSet.Q)
    steps, ok = benchmark(lambda: converge(system))
    assert ok
