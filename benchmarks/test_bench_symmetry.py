"""EXP-T10/T11 -- Theorems 10-11: symmetry vs similarity.

Theorem 10: symmetric nodes are similar in Q -- verified on a sweep of
structured and random systems.  Theorem 11: a prime-sized symmetric
processor class in a distributed L system is all-similar -- the prime vs
composite table over dining rings.
"""

from repro.analysis import yesno
from repro.core import (
    InstructionSet,
    System,
    analyze_prime_symmetry,
    decide_selection,
    is_prime,
    symmetric_implies_similar,
)
from repro.topologies import (
    dining_system,
    figure2_system,
    random_connected_network,
    star,
    torus_grid,
)


def theorem10_sweep():
    systems = {
        "dp5-ring": dining_system(5).with_instruction_set(InstructionSet.Q),
        "dp6-alt": dining_system(6, alternating=True).with_instruction_set(InstructionSet.Q),
        "figure-2": figure2_system(),
        "star-4": System(star(4), None, InstructionSet.Q),
        "torus-2x3": System(torus_grid(2, 3), None, InstructionSet.Q),
    }
    for i in range(4):
        net = random_connected_network(4, 3, seed=10 + i)
        systems[f"random-{i}"] = System(net, None, InstructionSet.Q)
    return [(name, symmetric_implies_similar(system)) for name, system in systems.items()]


def test_theorem10_symmetric_implies_similar(benchmark, show):
    rows = benchmark.pedantic(theorem10_sweep, rounds=1, iterations=1)
    assert all(ok for _n, ok in rows)
    show(
        ["system", "orbits refine Theta"],
        [(n, yesno(ok)) for n, ok in rows],
        title="EXP-T10  Theorem 10: symmetric => similar (in Q)",
    )


def theorem11_table():
    rows = []
    for n in (3, 4, 5, 6, 7):
        system = dining_system(n, instruction_set=InstructionSet.L)
        reports = analyze_prime_symmetry(system)
        phil = next(r for r in reports if len(r.orbit) == n)
        decision = decide_selection(system)
        rows.append(
            (
                n,
                yesno(is_prime(n)),
                yesno(phil.applies),
                yesno(phil.processors_similar_in_q),
                yesno(not decision.possible),
            )
        )
    return rows


def test_theorem11_prime_tables(benchmark, show):
    rows = benchmark.pedantic(theorem11_table, rounds=1, iterations=1)
    for n, prime, applies, _simq, _nosel in rows:
        assert applies == prime  # Theorem 11 fires exactly for primes
    # Uniform dining rings never admit selection in L regardless (the
    # uniform naming never contests a fork), so the last column is all yes.
    assert all(nosel == "yes" for *_x, nosel in rows)
    show(
        ["philosophers j", "j prime", "Theorem 11 applies", "class similar in Q", "no selection in L"],
        rows,
        title="EXP-T11  Theorem 11: prime symmetric classes in L",
    )
