"""EXP-F4 -- Figure 4 and DP (five dining philosophers).

Paper claims: the system is distributed and symmetric; 5 is prime, so by
Theorem 11 all philosophers are similar even in L; the round-robin
schedule keeps them in identical states, so whenever one eats all eat --
DP: no symmetric distributed deterministic solution.  We verify each link
of the argument and then watch the canonical deterministic program
deadlock.
"""

from repro.analysis import yesno
from repro.baselines import LeftFirstDiningProgram, run_dining
from repro.core import (
    InstructionSet,
    analyze_prime_symmetry,
    decide_selection,
    is_symmetric_system,
    similarity_labeling,
)
from repro.runtime import (
    ClassRoundRobinScheduler,
    Executor,
    RandomProgramL,
    RoundRobinScheduler,
    lockstep_holds,
)
from repro.topologies import adjacent_pairs, figure4_system


def analyze_dp5():
    system = figure4_system()  # L
    symmetric = is_symmetric_system(system)
    reports = analyze_prime_symmetry(system)
    phil_report = next(r for r in reports if len(r.orbit) == 5)
    decision = decide_selection(system)

    # Empirical similarity: random L programs stay in lockstep forever
    # under round-robin (no fork is contested under the same name).
    theta = similarity_labeling(system.with_instruction_set(InstructionSet.Q))
    classes = [sorted(b, key=repr) for b in theta.blocks]
    lockstep = all(
        lockstep_holds(
            Executor(
                system,
                RandomProgramL(system.names, seed=seed),
                ClassRoundRobinScheduler(system.processors, theta),
            ),
            classes,
            rounds=40,
        )
        for seed in range(3)
    )

    dining = run_dining(
        system,
        LeftFirstDiningProgram(),
        RoundRobinScheduler(system.processors),
        steps=3_000,
        adjacent=adjacent_pairs(system),
    )
    return symmetric, phil_report, decision, lockstep, dining


def test_dp5_impossibility_chain(benchmark, show):
    symmetric, phil_report, decision, lockstep, dining = benchmark(analyze_dp5)
    assert symmetric
    assert phil_report.prime and phil_report.applies
    assert phil_report.generator_order == 5
    assert not decision.possible
    assert lockstep
    assert dining.deadlocked and not dining.everyone_ate and dining.safety_ok
    show(
        ["claim", "holds"],
        [
            ("system is distributed + symmetric", yesno(symmetric)),
            ("|C| = 5 is prime; Theorem 11 applies", yesno(phil_report.applies)),
            ("transitive generator sigma of order 5 found", yesno(phil_report.generator_order == 5)),
            ("all philosophers similar in L -> no selection", yesno(not decision.possible)),
            ("random L programs stay in lockstep (round-robin)", yesno(lockstep)),
            ("left-first deterministic program deadlocks", yesno(dining.deadlocked)),
        ],
        title="EXP-F4  Figure 4 / DP: five philosophers",
    )
