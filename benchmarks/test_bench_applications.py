"""EXP-APP -- applications beyond selection (Section 1's promise).

"Solutions to many other synchronization problems and to certain types
of distributed programming problems can be found using similarity in the
same way": renaming, Rabin-style coordinated choice, and committee
selection, each decided by the labeling and executed by Algorithm 2.
"""

from repro.analysis import yesno
from repro.applications import (
    committee_possible,
    coordinated_choice_possible,
    renaming_possible,
    run_choice_coordination,
    run_committee,
    run_renaming,
)
from repro.core import InstructionSet, System
from repro.topologies import figure2_system, path, ring, star


def application_matrix():
    systems = {
        "marked ring-5": System(ring(5), {"p0": 1}, InstructionSet.Q),
        "path-4": System(path(4), None, InstructionSet.Q),
        "figure-2": figure2_system(),
        "anonymous ring-4": System(ring(4), None, InstructionSet.Q),
        "star-3": System(star(3), None, InstructionSet.Q),
    }
    rows = []
    for name, system in systems.items():
        n = len(system.processors)
        committee_ks = [k for k in range(n + 1) if committee_possible(system, k)]
        rows.append(
            (
                name,
                yesno(renaming_possible(system)),
                yesno(
                    coordinated_choice_possible(system, list(system.variables)[:2])
                ),
                ",".join(map(str, committee_ks)),
            )
        )
    return rows


def test_application_decisions(benchmark, show):
    rows = benchmark(application_matrix)
    by_name = {r[0]: r[1:] for r in rows}
    assert by_name["marked ring-5"][0] == "yes"
    assert by_name["anonymous ring-4"][0] == "no"
    # Anonymous ring: only the all-or-nothing committees.
    assert by_name["anonymous ring-4"][2] == "0,4"
    show(
        ["system", "renaming", "coordinated choice (first 2 vars)", "possible committee sizes"],
        rows,
        title="EXP-APP  similarity decides three more problems",
    )


def run_all_three():
    marked = System(ring(5), {"p0": 1}, InstructionSet.Q)
    renaming = run_renaming(marked)
    choice = run_choice_coordination(figure2_system(), ["v1", "v2"])
    committee = run_committee(figure2_system(), 2)
    return renaming, choice, committee


def test_applications_end_to_end(benchmark, show):
    renaming, choice, committee = benchmark(run_all_three)
    assert renaming.distinct
    assert choice.agreed
    assert committee.size_ok
    show(
        ["application", "outcome"],
        [
            ("renaming (marked ring-5)",
             f"names {sorted(renaming.names.values())} in {renaming.steps} steps"),
            ("coordinated choice (figure-2)",
             f"all marks on {choice.chosen}"),
            ("committee k=2 (figure-2)",
             f"members {', '.join(map(str, committee.members))}"),
        ],
        title="EXP-APP  runnable applications",
    )
