"""Shared helpers for the experiment benchmarks.

Each benchmark module regenerates one paper artifact (a figure's analysis
or a theorem's claim) and prints a paper-style table; run with

    pytest benchmarks/ --benchmark-only -s

to see the tables alongside the timing statistics.
"""

import pytest


@pytest.fixture
def show():
    """Print helper that also survives pytest's capture (shown with -s)."""
    from repro.analysis import print_table

    return print_table
