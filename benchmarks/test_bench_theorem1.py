"""EXP-T1 -- Theorem 1: no selection with general schedules (FLP).

For each candidate program in the zoo, the constructive adversary finds a
violating schedule: either a starvation cycle (a processor looping alone
never selects) or the proof's epsilon-p-rho double selection.
"""

from repro.analysis import candidate_zoo, refute_selection
from repro.core import InstructionSet, ScheduleClass, System
from repro.topologies import figure1_system, star


def refute_zoo():
    results = []
    systems = [
        ("figure-1", figure1_system(InstructionSet.S, ScheduleClass.GENERAL)),
        ("star-3", System(star(3), None, InstructionSet.S, ScheduleClass.GENERAL)),
    ]
    for sys_name, system in systems:
        name = system.names[0]
        for prog_name, builder in candidate_zoo(name):
            refutation = refute_selection(system, builder())
            results.append(
                (
                    sys_name,
                    prog_name,
                    refutation.kind if refutation else "NOT REFUTED",
                    len(refutation.schedule) if refutation else "-",
                )
            )
    return results


def crash_experiment():
    """The FLP reading, run live: a crash is a general schedule, and the
    fair-schedule algorithm (Algorithm 2) loses its guarantee exactly when
    the crash lands before the crucial post."""
    from repro.algorithms import Algorithm2Program, LabelTables
    from repro.core import similarity_labeling
    from repro.runtime import RoundRobinScheduler, run_with_crash
    from repro.topologies import figure2_system

    system = figure2_system()
    tables = LabelTables.from_labeled_system(system, similarity_labeling(system))
    rows = []
    for crash_step, label in ((0, "before first post"), (1_000, "after convergence")):
        report = run_with_crash(
            system,
            Algorithm2Program(tables),
            RoundRobinScheduler(system.processors),
            crash_at={"p1": crash_step},
            steps=20_000,
            done_predicate=Algorithm2Program.is_done,
        )
        rows.append((f"p1 crashes {label}", report.done["p3"]))
    return rows


def test_crash_as_general_schedule(benchmark, show):
    rows = benchmark.pedantic(crash_experiment, rounds=1, iterations=1)
    outcomes = dict(rows)
    assert not outcomes["p1 crashes before first post"]
    assert outcomes["p1 crashes after convergence"]
    show(
        ["scenario", "p3 learns its label"],
        [(s, "yes" if ok else "no") for s, ok in rows],
        title="EXP-T1  a crash is a general schedule (FLP reading)",
    )


def test_adversary_defeats_every_candidate(benchmark, show):
    results = benchmark(refute_zoo)
    assert all(kind != "NOT REFUTED" for _s, _p, kind, _l in results)
    show(
        ["system", "candidate program", "violation found", "schedule length"],
        results,
        title="EXP-T1  Theorem 1: the general-schedule adversary",
    )
