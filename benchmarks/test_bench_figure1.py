"""EXP-F1 -- Figure 1 (the trivial system).

Paper claims: with instruction set S or Q, the round-robin schedule makes
p and q behave similarly, so no program can select either; with L the
lock race separates them and selection is possible.
"""

from repro.analysis import yesno
from repro.core import (
    InstructionSet,
    decide_selection,
    similarity_labeling,
)
from repro.runtime import Executor, RandomProgramQ, RoundRobinScheduler, states_equal_infinitely_often
from repro.topologies import figure1_system


def analyze_figure1():
    rows = []
    for iset in (InstructionSet.S, InstructionSet.Q, InstructionSet.L):
        system = figure1_system(iset)
        decision = decide_selection(system)
        if iset is InstructionSet.L:
            similar = False  # relabel separates; see decision
        else:
            theta = similarity_labeling(system)
            similar = theta["p"] == theta["q"]
        rows.append((iset.value, yesno(similar), yesno(decision.possible)))
    return rows


def empirically_similar(seed):
    system = figure1_system(InstructionSet.Q)
    factory = lambda: Executor(
        system, RandomProgramQ(system.names, seed=seed), RoundRobinScheduler(system.processors)
    )
    return states_equal_infinitely_often(factory, ["p", "q"])


def test_figure1_selection_table(benchmark, show):
    rows = benchmark(analyze_figure1)
    assert [r[2] for r in rows] == ["no", "no", "yes"]
    show(
        ["instruction set", "p similar to q", "selection possible"],
        rows,
        title="EXP-F1  Figure 1: p,q sharing one variable",
    )


def test_figure1_empirical_similarity(benchmark):
    """Round-robin keeps p and q in equal states infinitely often, for
    arbitrary programs -- the definition of behaving similarly."""
    results = benchmark(lambda: [empirically_similar(seed) for seed in range(5)])
    assert all(results)
