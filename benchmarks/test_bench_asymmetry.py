"""EXP-ASYM -- Section 8: encapsulating asymmetry.

Three ways around DP on the five-ring, each moving the asymmetry
somewhere explicit:

* Chandy-Misra-style acyclic fork orientation: same symmetric program,
  asymmetric *initial state* -- works with plain reads/writes;
* the cyclic orientation control: symmetry restored, everyone starves;
* Chang-Roberts with ids: asymmetric initial states make every processor
  uniquely labeled, so election is trivial to decide and the classic
  algorithm runs.
"""

from repro.analysis import yesno
from repro.baselines import (
    ChandyMisraDiningProgram,
    TO_LEFT_USER,
    oriented_dining_system,
    run_chang_roberts,
    run_dining,
)
from repro.core import similarity_labeling
from repro.runtime import RoundRobinScheduler
from repro.topologies import adjacent_pairs


def run_cm(system, steps=5_000):
    return run_dining(
        system,
        ChandyMisraDiningProgram(),
        RoundRobinScheduler(system.processors),
        steps,
        adjacent_pairs(system),
        is_eating=ChandyMisraDiningProgram.is_eating,
        meals_of=ChandyMisraDiningProgram.meals,
    )


def analyze():
    acyclic = oriented_dining_system(5)
    cyclic = oriented_dining_system(5, orientation=[TO_LEFT_USER] * 5)
    acyclic_run = run_cm(acyclic)
    cyclic_run = run_cm(cyclic)
    theta = similarity_labeling(acyclic)
    classes = len({theta[p] for p in acyclic.processors})
    election = run_chang_roberts([4, 9, 2, 7, 5])
    return acyclic_run, cyclic_run, classes, election


def test_encapsulated_asymmetry(benchmark, show):
    acyclic_run, cyclic_run, classes, election = benchmark(analyze)
    assert acyclic_run.safety_ok and acyclic_run.everyone_ate
    assert not any(cyclic_run.meals.values())
    assert classes > 1  # the initial state carries the asymmetry
    assert election.leader_id == 9
    show(
        ["approach", "asymmetry lives in", "outcome"],
        [
            ("Chandy-Misra acyclic orientation", "initial variable states",
             f"everyone ate ({sum(acyclic_run.meals.values())} meals), S instructions only"),
            ("cyclic orientation (control)", "none (symmetric again)",
             "total starvation"),
            ("Chang-Roberts with ids", "initial processor states",
             f"leader id {election.leader_id} in {election.messages} messages"),
        ],
        title="EXP-ASYM  Section 8: encapsulated asymmetry beats DP",
    )


def hygienic_rows():
    from repro.baselines import run_hygienic

    rows = []
    for n in (3, 5, 7):
        report = run_hygienic(n, 4_000, acyclic=True, seed=1)
        meals = sorted(report.meals.values())
        rows.append(
            (
                f"hygienic ring-{n} (acyclic init)",
                report.total_meals,
                f"{meals[0]}..{meals[-1]}",
                "yes" if report.fork_invariant_ok else "NO",
            )
        )
    return rows


def test_hygienic_dining_full_protocol(benchmark, show):
    """The full [CM84] dirty/clean/request-token protocol: everyone eats,
    meal counts stay tight (starvation freedom), and the one-fork-per-edge
    invariant never breaks."""
    rows = benchmark.pedantic(hygienic_rows, rounds=1, iterations=1)
    assert all(inv == "yes" for *_x, inv in rows)
    show(
        ["system", "total meals", "per-philosopher spread", "fork invariant"],
        rows,
        title="EXP-ASYM  hygienic dining philosophers [CM84], dynamic protocol",
    )
