"""EXP-ABL -- ablations: each mechanism of the reproduction is load-bearing.

DESIGN.md calls out the design choices; these benchmarks knock each one
out and show the corresponding paper behavior breaks:

* without the kind-2 (counting) p-alibi, Figure 2's p3 never learns its
  label -- exactly the alibi the paper's narrative walks through;
* without parity-alternating write sweeps, the S-labeler starves one
  direction of a chain of information and stalls;
* the flow-based polynomial v-alibi against the paper's literal powerset
  test: identical answers, exponentially different costs as PLABELS
  grows.
"""

import time

from repro.algorithms import (
    Algorithm2Program,
    Algorithm2SProgram,
    LabelTables,
    PostRecord,
    v_alibi,
    v_alibi_powerset,
)
from repro.analysis import yesno
from repro.core import (
    EnvironmentModel,
    InstructionSet,
    ScheduleClass,
    System,
    similarity_labeling,
)
from repro.runtime import Executor, RoundRobinScheduler
from repro.topologies import figure2_system, path, star


def run_labeler(system, program, is_done, max_steps=30_000):
    executor = Executor(system, program, RoundRobinScheduler(system.processors))
    for i in range(max_steps):
        executor.step()
        if all(is_done(executor.local[p]) for p in system.processors):
            return i + 1
    return None


def ablate_kind2():
    system = figure2_system()
    theta = similarity_labeling(system)
    tables = LabelTables.from_labeled_system(system, theta)
    with_kind2 = run_labeler(
        system, Algorithm2Program(tables), Algorithm2Program.is_done
    )
    without_kind2 = run_labeler(
        system, Algorithm2Program(tables, use_kind2=False), Algorithm2Program.is_done
    )
    return with_kind2, without_kind2


def test_kind2_alibi_is_load_bearing(benchmark, show):
    with_kind2, without_kind2 = benchmark.pedantic(ablate_kind2, rounds=1, iterations=1)
    assert with_kind2 is not None
    assert without_kind2 is None  # p3 stays uncertain forever
    show(
        ["variant", "converges", "steps"],
        [
            ("full Algorithm 2", "yes", with_kind2),
            ("without kind-2 (counting) alibi", "no", "-"),
        ],
        title="EXP-ABL  Figure 2 needs the counting alibi",
    )


def ablate_exposure():
    """Exposure mechanisms of the S-labeler: merging read-modify writes
    (the cell as a grow-only gossip set) vs sweep choreography
    (parity-alternating sweeps + staggered write rounds).  Either family
    alone keeps information flowing both ways along the path; with both
    off, one direction starves and the labeler stalls forever."""
    system = System(path(4), None, InstructionSet.S, ScheduleClass.BOUNDED_FAIR)
    theta = similarity_labeling(system, model=EnvironmentModel.SET)
    tables = LabelTables.from_labeled_system(system, theta, model=EnvironmentModel.SET)
    variants = {
        "merge + choreography (full)": {},
        "merge only": {"alternate_sweeps": False, "stagger": False},
        "choreography only": {"merge_writes": False},
        "neither": {
            "merge_writes": False,
            "alternate_sweeps": False,
            "stagger": False,
        },
    }
    out = {}
    for label, kwargs in variants.items():
        out[label] = run_labeler(
            system,
            Algorithm2SProgram(tables, bound_k=8, **kwargs),
            Algorithm2SProgram.is_done,
            max_steps=40_000,
        )
    return out


def test_exposure_mechanisms_are_load_bearing(benchmark, show):
    results = benchmark.pedantic(ablate_exposure, rounds=1, iterations=1)
    assert results["merge + choreography (full)"] is not None
    assert results["merge only"] is not None
    assert results["choreography only"] is not None
    assert results["neither"] is None  # stalls forever
    show(
        ["variant", "converges", "steps"],
        [
            (name, yesno(steps is not None), steps if steps is not None else "-")
            for name, steps in results.items()
        ],
        title="EXP-ABL  path-4 S-labeler exposure mechanisms",
    )


def flow_vs_powerset(leaves):
    system = System(star(leaves), {f"p{i}": i for i in range(leaves)}, InstructionSet.Q)
    theta = similarity_labeling(system)
    tables = LabelTables.from_labeled_system(system, theta)
    posts = [
        PostRecord(frozenset(list(tables.plabels)[: 1 + i % 3]), "hub")
        for i in range(leaves)
    ]
    t0 = time.perf_counter()
    flow = v_alibi(posts, tables)
    t1 = time.perf_counter()
    power = v_alibi_powerset(posts, tables)
    t2 = time.perf_counter()
    assert flow == power
    return leaves, (t1 - t0) * 1000, (t2 - t1) * 1000


def test_flow_v_alibi_vs_powerset(benchmark, show):
    rows = benchmark.pedantic(
        lambda: [flow_vs_powerset(n) for n in (4, 8, 12, 16)], rounds=1, iterations=1
    )
    # The powerset blows up; the flow stays flat.
    assert rows[-1][2] > rows[-1][1]
    show(
        ["|PLABELS|", "flow ms", "powerset ms"],
        [(n, f"{f:.2f}", f"{p:.2f}") for n, f, p in rows],
        title="EXP-ABL  polynomial v-alibi vs the literal powerset test",
    )
