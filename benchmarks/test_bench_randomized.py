"""EXP-RAND -- Section 8: the added power of randomization.

Two head-to-heads:

* dining on the five-ring: the deterministic symmetric program deadlocks
  (DP), Lehmann-Rabin feeds everyone;
* leader election on anonymous rings: deterministically impossible
  (Theorem 2: all processors similar), Itai-Rodeh elects with
  probability 1, with the expected-phase growth as the id space shrinks.
"""

from repro.analysis import yesno
from repro.baselines import LeftFirstDiningProgram, run_dining
from repro.core import InstructionSet, System, decide_selection
from repro.randomized import election_statistics, run_lehmann_rabin
from repro.runtime import RandomFairScheduler, RoundRobinScheduler
from repro.topologies import adjacent_pairs, dining_system, ring


def dining_head_to_head():
    system = dining_system(5, instruction_set=InstructionSet.L)
    pairs = adjacent_pairs(system)
    deterministic = run_dining(
        system,
        LeftFirstDiningProgram(),
        RoundRobinScheduler(system.processors),
        steps=4_000,
        adjacent=pairs,
    )
    randomized = run_lehmann_rabin(
        system,
        RandomFairScheduler(system.processors, seed=1),
        steps=8_000,
        adjacent=pairs,
        seed=7,
    )
    return deterministic, randomized


def test_dining_deterministic_vs_randomized(benchmark, show):
    deterministic, randomized = benchmark(dining_head_to_head)
    assert deterministic.deadlocked and not deterministic.everyone_ate
    assert randomized.safety_ok and randomized.everyone_ate
    show(
        ["program", "safety", "deadlock", "everyone ate", "total meals"],
        [
            ("left-first (deterministic, symmetric)", yesno(deterministic.safety_ok),
             yesno(deterministic.deadlocked), yesno(deterministic.everyone_ate),
             sum(deterministic.meals.values())),
            ("Lehmann-Rabin (randomized, symmetric)", yesno(randomized.safety_ok),
             "no", yesno(randomized.everyone_ate), randomized.total_meals),
        ],
        title="EXP-RAND  dining on the 5-ring: determinism vs coins",
    )


def election_table():
    rows = []
    for n in (3, 5, 8):
        deterministic = decide_selection(System(ring(n), None, InstructionSet.Q))
        stats = election_statistics(n, id_space=2, trials=150, seed=n)
        rows.append(
            (
                n,
                yesno(deterministic.possible),
                f"{stats.success_rate:.2f}",
                f"{stats.mean_phases:.2f}",
                f"{stats.mean_messages:.0f}",
            )
        )
    return rows


def test_anonymous_ring_election(benchmark, show):
    rows = benchmark.pedantic(election_table, rounds=1, iterations=1)
    assert all(det == "no" for _n, det, *_x in rows)
    assert all(rate == "1.00" for _n, _d, rate, *_x in rows)
    show(
        ["ring size", "deterministic selection", "IR success rate", "mean phases", "mean messages"],
        rows,
        title="EXP-RAND  anonymous-ring election: Itai-Rodeh (id space 2)",
    )


def test_id_space_vs_phases(benchmark, show):
    def sweep():
        return [
            (space, f"{election_statistics(6, id_space=space, trials=200, seed=space).mean_phases:.2f}")
            for space in (2, 4, 16, 64)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    phases = [float(p) for _s, p in rows]
    assert phases == sorted(phases, reverse=True)  # bigger space, fewer ties
    show(
        ["id space", "mean phases"],
        rows,
        title="EXP-RAND  tie probability vs id space (ring of 6)",
    )
