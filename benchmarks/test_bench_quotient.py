"""EXP-QUO -- quotient compression of symmetric systems.

The similarity labeling is "unique up to isomorphism" (Section 3); the
quotient realizes it as a finite object.  On highly symmetric systems the
compression is extreme -- the class-level system that drives all further
analysis (selection decisions, Algorithm-2 tables) is constant-size while
the concrete system grows.
"""

from repro.core import InstructionSet, System, quotient_system
from repro.topologies import hypercube, ring, star, torus_grid


def compression_table():
    cases = [
        ("anonymous ring-200", System(ring(200), None, InstructionSet.Q)),
        ("marked ring-200", System(ring(200), {"p0": 1}, InstructionSet.Q)),
        ("star-100", System(star(100), None, InstructionSet.Q)),
        ("torus 8x8", System(torus_grid(8, 8), None, InstructionSet.Q)),
        ("hypercube-5", System(hypercube(5), None, InstructionSet.Q)),
    ]
    rows = []
    for name, system in cases:
        q = quotient_system(system)
        nodes = len(system.nodes)
        classes = q.processor_class_count + q.variable_class_count
        rows.append((name, nodes, classes, f"{nodes / classes:.0f}x"))
    return rows


def test_quotient_compression(benchmark, show):
    rows = benchmark.pedantic(compression_table, rounds=1, iterations=1)
    by_name = {r[0]: r for r in rows}
    # Symmetric systems collapse to a handful of classes...
    assert by_name["anonymous ring-200"][2] == 2
    assert by_name["star-100"][2] == 2
    assert by_name["torus 8x8"][2] == 3
    # ...while one mark undoes it completely.
    assert by_name["marked ring-200"][2] == 400
    show(
        ["system", "nodes", "similarity classes", "compression"],
        rows,
        title="EXP-QUO  quotients: how much symmetry a system has",
    )
